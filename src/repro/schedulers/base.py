"""The VM-scheduler interface the simulated hypervisor invokes.

A scheduler implements four entry points mirroring the hooks Xen's
``struct scheduler`` exposes (and which the paper instruments in
Sec. 7.2): picking the next vCPU on a core (*schedule*), reacting to a
vCPU waking up (*wakeup*), post-schedule work such as sending rescheduling
IPIs or load balancing (*migrate*), and block notification.  Every entry
point reports the modelled overhead of the operation, which the machine
charges to the core and traces — that is how scheduler inefficiency
translates into lost application throughput in this simulator, exactly
as in the paper's argument (Sec. 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.vm import VCpu

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine


@dataclass(slots=True)
class Decision:
    """Result of one scheduling decision on a core.

    Attributes:
        vcpu: The vCPU to run, or ``None`` to idle.
        quantum_end: Absolute time at which the scheduler wants to be
            re-invoked on this core (budget exhaustion, slot boundary,
            timeslice end); ``None`` means "only on wake/block events".
        level: Which policy level made the decision (Tableau: 1 = table,
            2 = second-level scheduler; others: 1).
        cost_ns: Modelled duration of the decision, traced as "schedule".
    """

    vcpu: Optional[VCpu]
    quantum_end: Optional[int] = None
    level: int = 1
    cost_ns: float = 0.0


@dataclass(slots=True)
class WakeAction:
    """Result of processing a vCPU wakeup.

    Attributes:
        cpu: Core on which the wakeup processing is charged.
        cost_ns: Modelled duration, traced as "wakeup".
        resched_cpu: Core that should re-run its scheduler as a result
            (``None`` if the wakeup does not trigger rescheduling).
        ipi_delay_ns: Extra latency before the resched fires (IPI wire
            time) when ``resched_cpu`` differs from the processing core.
    """

    cpu: int
    cost_ns: float = 0.0
    resched_cpu: Optional[int] = None
    ipi_delay_ns: int = 0


class Scheduler:
    """Base class; concrete schedulers override all four entry points."""

    name = "abstract"

    def __init__(self) -> None:
        self.machine: Optional["Machine"] = None

    def attach(self, machine: "Machine") -> None:
        """Called once when the machine is assembled."""
        self.machine = machine

    def add_vcpu(self, vcpu: VCpu) -> None:
        """Register a vCPU (before the simulation starts)."""
        raise NotImplementedError

    def pick_next(self, cpu: int, now: int) -> Decision:
        """Choose what runs next on ``cpu``."""
        raise NotImplementedError

    def on_block(self, vcpu: VCpu, now: int) -> None:
        """``vcpu`` (previously running) just blocked."""

    def on_wakeup(self, vcpu: VCpu, now: int) -> WakeAction:
        """``vcpu`` just became runnable after blocking."""
        raise NotImplementedError

    def post_schedule(
        self, cpu: int, prev: Optional[VCpu], chosen: Optional[VCpu], now: int
    ) -> float:
        """Post-context-switch work; returns cost traced as "migrate"."""
        return 0.0

    def runnable_on(self, cpu: int) -> int:
        """Number of runnable vCPUs associated with ``cpu`` (diagnostics)."""
        return 0

    def array_program(self, machine: "Machine") -> Optional[object]:
        """Compiled fused-dispatch program for the array backend, if any.

        Called once by :class:`repro.sim.arraycore.ArrayMachine` before
        the first event.  Schedulers whose decisions can be flattened
        into table playback return a program object exposing
        ``resched(cpu)``, ``cpu_event(cpu)``, and ``wake(vcpu)`` kernels
        that are bit-compatible with the object dispatch path; the
        default ``None`` keeps the machine on the object engine.
        """
        return None
