"""VM scheduler implementations compared in the paper.

Tableau (the paper's contribution) plus the three stock Xen schedulers
it is evaluated against: Credit, Credit2, and RTDS.  All implement the
:class:`repro.schedulers.base.Scheduler` interface; a naive round-robin
reference scheduler is included for tests and ablations.
"""

from repro.schedulers.base import Decision, Scheduler, WakeAction
from repro.schedulers.credit import CreditScheduler
from repro.schedulers.credit2 import Credit2Scheduler
from repro.schedulers.rtds import RtdsScheduler
from repro.schedulers.simple import RoundRobinScheduler
from repro.schedulers.tableau import TableauScheduler

__all__ = [
    "Credit2Scheduler",
    "CreditScheduler",
    "Decision",
    "RoundRobinScheduler",
    "RtdsScheduler",
    "Scheduler",
    "TableauScheduler",
    "WakeAction",
]
