"""A deliberately naive round-robin scheduler.

Not part of the paper's comparison; it exists as (i) a minimal reference
implementation of the scheduler interface, (ii) the fixture the machine
tests use so they exercise dispatch mechanics without any policy
complexity, and (iii) a sanity baseline in ablation benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.schedulers.base import Decision, Scheduler, WakeAction
from repro.sim.vm import VCpu

DEFAULT_SLICE_NS = 1_000_000


class RoundRobinScheduler(Scheduler):
    """Global FIFO queue, fixed timeslice, zero modelled overhead.

    Args:
        timeslice_ns: Preemption quantum.
        cost_ns: Flat overhead charged per operation (zero by default so
            machine tests can assert exact timings).
    """

    name = "round-robin"

    def __init__(self, timeslice_ns: int = DEFAULT_SLICE_NS, cost_ns: float = 0.0):
        super().__init__()
        self.timeslice_ns = timeslice_ns
        self.cost_ns = cost_ns
        self._queue: Deque[VCpu] = deque()
        self._cpu_pool: List[int] = []

    def attach(self, machine) -> None:
        super().attach(machine)
        self._cpu_pool = machine.topology.guest_cores

    def add_vcpu(self, vcpu: VCpu) -> None:
        pass  # queued on wakeup / first pick

    def pick_next(self, cpu: int, now: int) -> Decision:
        if cpu not in self._cpu_pool:
            return Decision(None, quantum_end=None, cost_ns=0.0)
        current = self.machine.cpus[cpu].current
        if current is not None and current.runnable:
            self._queue.append(current)
        chosen: Optional[VCpu] = None
        for _ in range(len(self._queue)):
            head = self._queue.popleft()
            if head.runnable and (head.pcpu is None or head.pcpu == cpu):
                chosen = head
                break
            if head.runnable:
                self._queue.append(head)
        if chosen is None:
            return Decision(None, quantum_end=None, cost_ns=self.cost_ns)
        return Decision(
            chosen,
            quantum_end=now + self.timeslice_ns,
            level=1,
            cost_ns=self.cost_ns,
        )

    def on_block(self, vcpu: VCpu, now: int) -> None:
        if vcpu in self._queue:
            self._queue.remove(vcpu)

    def on_wakeup(self, vcpu: VCpu, now: int) -> WakeAction:
        if vcpu not in self._queue:
            self._queue.append(vcpu)
        idle = next(
            (
                cpu
                for cpu in self._cpu_pool
                if self.machine.cpus[cpu].current is None
            ),
            None,
        )
        return WakeAction(cpu=vcpu.last_cpu, cost_ns=self.cost_ns, resched_cpu=idle)

    def runnable_on(self, cpu: int) -> int:
        return len(self._queue)
