"""Model of Xen's Credit2 scheduler.

Credit2 replaces Credit's per-core runqueues and boosting with
per-socket runqueues ordered by remaining credit (Sec. 7.2: it
"eliminates Credit's priority boosting as it is now understood to cause
performance unpredictability").  Credits burn at a weight-scaled rate
while running; when the highest credit in a runqueue drops to zero the
whole queue is reset.  Wakeups preempt the running vCPU only if the
waker's credit exceeds it — a much milder heuristic than BOOST, which is
why Credit2 shows good tail latency but cannot exploit I/O-friendly
prioritization when it would help (Fig. 8, uncapped).

Credit2 has no cap mechanism, matching the paper's use of it only in
uncapped scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.schedulers.base import Decision, Scheduler, WakeAction
from repro.sim.overheads import IPI_WIRE_NS
from repro.sim.vm import VCpu

#: Credits handed to every vCPU at a reset (ns of weighted runtime).
CREDIT_INIT_NS = 10_000_000
#: Minimum time a vCPU runs before wakeup preemption (Xen's ratelimit).
RATELIMIT_NS = 1_000_000
#: Maximum timeslice between scheduler invocations.  Credit2 sizes its
#: slices dynamically; ~2 ms is typical under contention and keeps
#: CPU-bound vCPUs interleaving finely (the behaviour behind its good
#: latency with CPU-bound background load, Fig. 5b).
TIMESLICE_NS = 2_000_000

# Cost-model constants (ns), calibrated to the Credit2 column of
# Tables 1/2.  Schedule and wakeup costs are dominated by per-socket
# runqueue manipulation under a runqueue lock (roughly constant); the
# migrate path scans core state and scales with machine size.
PICK_BASE_NS: float = 2_320.0
PICK_SCALED_NS: float = 1_190.0
PICK_PER_ENTRY_NS: float = 45.0
WAKE_BASE_NS: float = 4_770.0
WAKE_SCALED_NS: float = 420.0
MIGRATE_PER_CORE_NS: float = 360.0


@dataclass
class _Credit2State:
    credits: float = CREDIT_INIT_NS
    runtime_seen: int = 0  # vcpu.runtime_ns at the last settlement


class Credit2Scheduler(Scheduler):
    """Per-socket runqueues ordered by credit; no boosting, no caps."""

    name = "credit2"

    def __init__(self) -> None:
        super().__init__()
        self._state: Dict[str, _Credit2State] = {}
        self._runq: Dict[int, List[VCpu]] = {}  # per socket
        self._socket_of_vcpu: Dict[str, int] = {}
        self._cpu_pool: List[int] = []
        self._next = 0

    def attach(self, machine) -> None:
        super().attach(machine)
        self._cpu_pool = machine.topology.guest_cores
        for socket in range(machine.topology.sockets):
            self._runq[socket] = []

    def add_vcpu(self, vcpu: VCpu) -> None:
        cpu = self._cpu_pool[self._next % len(self._cpu_pool)]
        self._next += 1
        socket = self.machine.topology.socket_of(cpu)
        self._state[vcpu.name] = _Credit2State()
        self._socket_of_vcpu[vcpu.name] = socket
        vcpu.last_cpu = cpu

    # ------------------------------------------------------------------

    def _burn(self, vcpu: VCpu, now: int) -> None:
        state = self._state[vcpu.name]
        ran = vcpu.runtime_ns - state.runtime_seen
        state.runtime_seen = vcpu.runtime_ns
        # Burn rate is inversely proportional to weight (weight 256
        # burns 1 credit per ns of runtime).
        state.credits -= ran * (256.0 / vcpu.weight)

    def _reset_if_needed(self, socket: int, extra: Optional[VCpu]) -> None:
        members = list(self._runq[socket])
        if extra is not None:
            members.append(extra)
        if not members:
            return
        # Runs on every pick (reachable from the resched hot path), so
        # the all-depleted test is a plain loop with an early exit —
        # in the common case the first solvent member bails out without
        # building a generator per pick.
        for v in members:
            if self._state[v.name].credits > 0:
                return
        for v in members:
            self._state[v.name].credits += CREDIT_INIT_NS

    # ------------------------------------------------------------------

    def pick_next(self, cpu: int, now: int) -> Decision:
        if cpu not in self._cpu_pool:
            return Decision(None, quantum_end=None, cost_ns=0.0)
        socket = self.machine.topology.socket_of(cpu)
        queue = self._runq[socket]
        cost = (
            PICK_BASE_NS
            + PICK_SCALED_NS * self.machine.costs.socket_factor
            + PICK_PER_ENTRY_NS * len(queue)
        )

        current = self.machine.cpus[cpu].current
        if current is not None:
            self._burn(current, now)
            if current.runnable:
                self._enqueue(current)

        self._reset_if_needed(socket, None)
        chosen = self._dequeue_best(socket, cpu)
        if chosen is None:
            return Decision(None, quantum_end=None, cost_ns=cost)
        return Decision(
            chosen, quantum_end=now + TIMESLICE_NS, level=1, cost_ns=cost
        )

    def on_block(self, vcpu: VCpu, now: int) -> None:
        self._burn(vcpu, now)
        socket = self._socket_of_vcpu[vcpu.name]
        if vcpu in self._runq[socket]:
            self._runq[socket].remove(vcpu)

    def on_wakeup(self, vcpu: VCpu, now: int) -> WakeAction:
        cost = WAKE_BASE_NS + WAKE_SCALED_NS * self.machine.costs.socket_factor
        self._enqueue(vcpu)
        socket = self._socket_of_vcpu[vcpu.name]
        self._reset_if_needed(socket, None)
        target = self._preemption_target(socket, vcpu, now)
        return WakeAction(
            cpu=vcpu.last_cpu,
            cost_ns=cost,
            resched_cpu=target,
            ipi_delay_ns=IPI_WIRE_NS,
        )

    def post_schedule(
        self, cpu: int, prev: Optional[VCpu], chosen: Optional[VCpu], now: int
    ) -> float:
        return MIGRATE_PER_CORE_NS * self.machine.topology.num_cores

    def runnable_on(self, cpu: int) -> int:
        socket = self.machine.topology.socket_of(cpu)
        return len(self._runq.get(socket, ()))

    # ------------------------------------------------------------------

    def _enqueue(self, vcpu: VCpu) -> None:
        socket = self._socket_of_vcpu[vcpu.name]
        if vcpu not in self._runq[socket]:
            self._runq[socket].append(vcpu)

    def _dequeue_best(self, socket: int, cpu: int) -> Optional[VCpu]:
        queue = self._runq[socket]
        best: Optional[VCpu] = None
        for vcpu in queue:
            if not vcpu.runnable or (vcpu.pcpu is not None and vcpu.pcpu != cpu):
                continue
            if best is None or (
                self._state[vcpu.name].credits > self._state[best.name].credits
            ):
                best = vcpu
        if best is not None:
            queue.remove(best)
        return best

    def _preemption_target(
        self, socket: int, waker: VCpu, now: int
    ) -> Optional[int]:
        """Pick a core of the socket to preempt: idle first, else the one
        running the lowest-credit vCPU below the waker's credit."""
        waker_credits = self._state[waker.name].credits
        worst_cpu: Optional[int] = None
        worst_credits = waker_credits
        for cpu in self._cpu_pool:
            if self.machine.topology.socket_of(cpu) != socket:
                continue
            running = self.machine.cpus[cpu].current
            if running is None:
                return cpu
            state = self._state.get(running.name)
            if state is None:
                continue
            # Ratelimit: do not preempt a vCPU that just started running.
            if now - self.machine.cpus[cpu].run_start < RATELIMIT_NS:
                continue
            if state.credits < worst_credits:
                worst_credits = state.credits
                worst_cpu = cpu
        return worst_cpu
