"""The Tableau dispatcher: table-driven first level + fair-share second level.

This is the runtime half of Tableau (Sec. 4 and 6): an O(1), core-local
dispatcher that enacts the planner's table, plus an epoch-based
round-robin second-level scheduler that soaks up idle slots so the
machine stays work-conserving for uncapped vCPUs.

The implementation mirrors the paper's key mechanisms:

* **O(1) dispatch** via the slice table (at most two records per lookup);
* **cross-core migration safety** — a core never runs a vCPU still
  marked as scheduled elsewhere; it registers for an IPI and the owning
  core sends one in its post-schedule path when it deschedules the vCPU;
* **efficient wake-ups** — the table itself tells the waking core which
  pCPU to notify (current allocation, else the idle home core for
  uncapped vCPUs; wake-ups of capped vCPUs without an allocation are
  safely ignored);
* **lock-free table switches** — a pending table installed with a cycle
  number becomes active at the next table wrap, identically on every
  core (the Xen layer in :mod:`repro.xen` takes care of choosing a safe
  activation point mid-round).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.table import SystemTable
from repro.errors import ConfigurationError
from repro.hotpath import coldpath, hotpath
from repro.schedulers.base import Decision, Scheduler, WakeAction
from repro.sim.overheads import IPI_WIRE_NS
from repro.sim.vm import VCpu, VCpuState

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan

#: Cost-model constants (ns), calibrated so the 16-core I/O scenario
#: reproduces the Tableau column of Table 1 (1.43 / 1.06 / 0.43 us).
#: The split between a fixed local part and a socket-scaled part is
#: derived from the 16- vs 48-core measurements (Tables 1 and 2).
PICK_LOCAL_NS: float = 430.0
PICK_SCALED_NS: float = 1_000.0
L2_SCAN_NS: float = 35.0  # per core-local candidate examined
WAKE_LOCAL_NS: float = 300.0
WAKE_SCALED_NS: float = 760.0
MIGRATE_LOCAL_NS: float = 200.0
MIGRATE_SCALED_NS: float = 230.0

#: Default second-level scheduling epoch and maximum L2 timeslice.
DEFAULT_L2_EPOCH_NS = 10_000_000
DEFAULT_L2_SLICE_NS = 1_000_000

#: Budget residue below this counts as exhausted.  Dispatching a vCPU
#: for less than the scheduling overhead would make no progress, so
#: sub-threshold budgets must trigger replenishment rather than a
#: zero-length timeslice.
L2_MIN_BUDGET_NS = 50_000


@dataclass
class _L2State:
    """Per-core second-level scheduler state (epoch budgets)."""

    budgets: Dict[str, int] = field(default_factory=dict)
    members: List[VCpu] = field(default_factory=list)


class TableauScheduler(Scheduler):
    """Table-driven dispatcher enacting a planner-generated system table.

    Args:
        table: The system table to enact (slices are built if missing).
        capped: Per-vCPU cap flags; capped vCPUs never run outside their
            table slots (and are skipped by the second-level scheduler).
            Defaults come from each vCPU's own ``capped`` attribute.
        l2_epoch_ns: Epoch length of the second-level fair-share
            scheduler.
        l2_slice_ns: Maximum contiguous L2 timeslice (keeps the second
            level round-robin responsive).
        work_conserving: Disable to get the naive, strictly-table-driven
            dispatcher (used by the ablation benchmark).
        split_l2_policy: ``"none"`` (paper prototype: split vCPUs do not
            take part in second-level scheduling) or ``"trailing"`` (the
            trailing-core policy sketched in Sec. 5).
        faults: Optional :class:`~repro.faults.FaultPlan` consulted at
            the table-switch activation point (``runtime.table.switch``).
            A fired spec makes the staged table fail to activate; with
            ``corrupt=True`` the targeted core (``spec.cpu``, or every
            core) drops to the degraded round-robin dispatcher until a
            later switch succeeds.
    """

    name = "tableau"

    def __init__(
        self,
        table: SystemTable,
        l2_epoch_ns: int = DEFAULT_L2_EPOCH_NS,
        l2_slice_ns: int = DEFAULT_L2_SLICE_NS,
        work_conserving: bool = True,
        split_l2_policy: str = "none",
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        super().__init__()
        if split_l2_policy not in ("none", "trailing"):
            raise ConfigurationError(f"unknown split policy {split_l2_policy!r}")
        self.table = table
        self.table.build_slices()
        self.l2_epoch_ns = l2_epoch_ns
        self.l2_slice_ns = l2_slice_ns
        self.work_conserving = work_conserving
        self.split_l2_policy = split_l2_policy
        self._vcpus: Dict[str, VCpu] = {}
        self._l2: Dict[int, _L2State] = {}
        self._last_pick: Dict[int, Tuple[Optional[VCpu], int, int]] = {}
        self._pending_table: Optional[SystemTable] = None
        self._pending_cycle: int = 0
        self.table_switches = 0
        self.faults = faults
        if faults is not None:
            from repro.faults.plan import SITE_TABLE_SWITCH

            self._switch_faults = faults.has_site(SITE_TABLE_SWITCH)
        else:
            self._switch_faults = False
        self.failed_switches = 0
        #: Cores currently running the degraded round-robin dispatcher,
        #: mapped to the reason they dropped out of table-driven mode.
        self.degraded_cores: Dict[int, str] = {}
        self.degraded_picks = 0
        self._rr_cursor: Dict[int, int] = {}
        #: vCPUs barred from dispatch (name -> reason); see quarantine().
        self._quarantined: Dict[str, str] = {}
        # Invoked as (old_table, new_table, now) at the wrap where a
        # staged table becomes active; the hypercall layer uses it to
        # retire the outgoing table the moment no core references it.
        self.on_table_switch: Optional[
            Callable[[SystemTable, SystemTable, int], None]
        ] = None
        self._switch_listeners: List[
            Callable[[SystemTable, SystemTable, int], None]
        ] = []
        self._switch_failed_listeners: List[Callable[[SystemTable, int], None]] = []
        # Entry-point costs are fixed per machine (socket_factor is a
        # topology constant); precomputed at attach so the hot path does
        # not re-derive them on every invocation.
        self._pick_cost = PICK_LOCAL_NS + PICK_SCALED_NS
        self._wake_cost = WAKE_LOCAL_NS + WAKE_SCALED_NS
        self._migrate_cost = MIGRATE_LOCAL_NS + MIGRATE_SCALED_NS

    def attach(self, machine) -> None:
        super().attach(machine)
        factor = machine.costs.socket_factor
        self._pick_cost = PICK_LOCAL_NS + PICK_SCALED_NS * factor
        self._wake_cost = WAKE_LOCAL_NS + WAKE_SCALED_NS * factor
        self._migrate_cost = MIGRATE_LOCAL_NS + MIGRATE_SCALED_NS * factor

    # ------------------------------------------------------------------
    # Assembly and table management
    # ------------------------------------------------------------------

    def add_vcpu(self, vcpu: VCpu) -> None:
        if vcpu.name not in self.table.home_cores:
            raise ConfigurationError(
                f"{vcpu.name} has no allocations in the installed table"
            )
        self._vcpus[vcpu.name] = vcpu
        home = self._l2_home(vcpu)
        if home is not None:
            state = self._l2.setdefault(home, _L2State())
            state.members.append(vcpu)
            state.budgets[vcpu.name] = 0

    def install_table(self, table: SystemTable, first_cycle: int) -> None:
        """Stage ``table`` to become active at table-cycle ``first_cycle``.

        All cores compare the current cycle index against the activation
        cycle inside ``pick_next``, so they flip over at exactly the same
        table wrap without any locking — the simulated analogue of the
        time-synchronized ``next_table`` pointer of Sec. 6.
        """
        table.build_slices()
        self._pending_table = table
        self._pending_cycle = first_cycle

    def _maybe_switch(self, now: int) -> None:
        if self._pending_table is None:
            return
        if now // self.table.length_ns >= self._pending_cycle:
            new = self._pending_table
            self._pending_table = None
            if self._switch_faults:
                from repro.faults.plan import SITE_TABLE_SWITCH

                spec = self.faults.fires(SITE_TABLE_SWITCH)
                if spec is not None:
                    # Mid-activation failure: the staged table is dropped
                    # (a fresh push is needed to retry) and, if the fault
                    # corrupts per-core state, the targeted cores fall
                    # back to degraded round-robin dispatch.
                    self.failed_switches += 1
                    if spec.corrupt:
                        reason = "table switch failed mid-activation"
                        if spec.cpu is not None:
                            self.degraded_cores[spec.cpu] = reason
                        else:
                            for core in self.table.cores:
                                self.degraded_cores[core] = reason
                    for listener in self._switch_failed_listeners:
                        listener(new, now)
                    return
            old = self.table
            self.table = new
            self.table_switches += 1
            # Home cores may have moved under the new table: rebuild the
            # second-level membership (budgets carry over so mid-epoch
            # fairness is preserved across the switch).
            self._rebuild_l2()
            if self.degraded_cores:
                # A clean table activation is the recovery point: every
                # degraded core resumes table-driven dispatch.
                self.degraded_cores.clear()
            if self.on_table_switch is not None:
                self.on_table_switch(old, self.table, now)
            for listener in self._switch_listeners:
                listener(old, self.table, now)

    def _rebuild_l2(self) -> None:
        carried: Dict[str, int] = {}
        for state in self._l2.values():
            carried.update(state.budgets)
        self._l2 = {}
        for vcpu in self._vcpus.values():
            home = self._l2_home(vcpu)
            if home is None:
                continue
            state = self._l2.setdefault(home, _L2State())
            state.members.append(vcpu)
            state.budgets[vcpu.name] = carried.get(vcpu.name, 0)

    def add_switch_listener(
        self, listener: Callable[[SystemTable, SystemTable, int], None]
    ) -> None:
        """Register a callback invoked after every successful switch."""
        self._switch_listeners.append(listener)

    def add_switch_failed_listener(
        self, listener: Callable[[SystemTable, int], None]
    ) -> None:
        """Register a callback invoked as (dropped_table, now) when an
        activation fails under fault injection."""
        self._switch_failed_listeners.append(listener)

    @property
    def pending_table(self) -> Optional[SystemTable]:
        """The staged table (if any) awaiting its activation wrap."""
        return self._pending_table

    @property
    def pending_cycle(self) -> int:
        return self._pending_cycle

    # ------------------------------------------------------------------
    # Scheduling entry points
    # ------------------------------------------------------------------

    @hotpath
    def pick_next(self, cpu: int, now: int) -> Decision:
        # Settle the previous pick's second-level budget *before* any
        # table switch (inlined _settle_l2: this runs on every decision,
        # so the common level-1/idle case must exit in a couple of
        # compares).  Ordering matters: a switch rebuilds the L2
        # membership, and a wakeup-driven resched landing exactly on the
        # activation boundary would otherwise lose the budget consumed
        # under the outgoing table.
        last = self._last_pick.get(cpu)
        if last is not None and last[2] == 2:
            prev_vcpu, runtime_seen, _level = last
            state = self._l2.get(cpu)
            if state is None:
                state = self._l2[cpu] = _L2State()
            consumed = prev_vcpu.runtime_ns - runtime_seen
            if consumed > 0:
                remaining = state.budgets.get(prev_vcpu.name, 0) - consumed
                state.budgets[prev_vcpu.name] = remaining if remaining > 0 else 0

        if self._pending_table is not None:
            self._maybe_switch(now)
        if self.degraded_cores and cpu in self.degraded_cores:
            return self._pick_degraded(cpu, now)
        state = self._l2.get(cpu)

        cost = self._pick_cost
        core_table = self.table.cores.get(cpu)
        if core_table is None:
            return Decision(None, quantum_end=None, cost_ns=cost)
        # The lookup memo covers the slot enclosing ``now`` (lookup()
        # installs it on miss), so one tuple yields the allocation, the
        # level-1 quantum end, and the next timer boundary.
        memo = core_table._memo
        if memo is None or not memo[0] <= now < memo[1]:
            core_table.lookup(now)
            memo = core_table._memo
        alloc = memo[2]

        if alloc is not None and alloc.vcpu is not None:
            vcpu = self._vcpus.get(alloc.vcpu)
            if (
                vcpu is not None
                and vcpu.state is not VCpuState.BLOCKED
                and (not self._quarantined or vcpu.name not in self._quarantined)
            ):
                if vcpu.pcpu is not None and vcpu.pcpu != cpu:
                    # Scheduled elsewhere (overlapping split-allocation
                    # race): register for an IPI on deschedule and fall
                    # through to the second level meanwhile.
                    vcpu.sched_data["tableau.waiter"] = cpu
                else:
                    self._last_pick[cpu] = (vcpu, vcpu.runtime_ns, 1)
                    return Decision(vcpu, quantum_end=memo[1], level=1, cost_ns=cost)

        boundary = memo[1]

        # Idle slot (or blocked/busy owner): try the second level.
        if self.work_conserving:
            candidate, budget = self._l2_pick(cpu, now, state)
            if candidate is not None:
                if self.split_l2_policy != "none":
                    state = self._l2.get(cpu)
                cost += L2_SCAN_NS * (len(state.members) if state is not None else 0)
                slice_ns = budget if budget < self.l2_slice_ns else self.l2_slice_ns
                quantum = now + slice_ns
                if boundary < quantum:
                    quantum = boundary
                self._last_pick[cpu] = (candidate, candidate.runtime_ns, 2)
                return Decision(candidate, quantum_end=quantum, level=2, cost_ns=cost)

        self._last_pick[cpu] = (None, 0, 0)
        return Decision(None, quantum_end=boundary, cost_ns=cost)

    # ------------------------------------------------------------------
    # Degraded mode and quarantine
    # ------------------------------------------------------------------

    @coldpath
    def _pick_degraded(self, cpu: int, now: int) -> Decision:
        """Emergency round-robin dispatch for a core whose table state is
        corrupt (failed mid-activation switch).

        Every non-quarantined vCPU homed on the core — capped or not —
        gets a bounded timeslice in turn, so guests keep making progress
        until the planner daemon pushes a clean table and the next
        successful switch restores table-driven dispatch.
        """
        cost = self._pick_cost
        quarantined = self._quarantined
        home_cores = self.table.home_cores
        blocked = VCpuState.BLOCKED
        candidates = [
            v
            for v in self._vcpus.values()
            if v.state is not blocked
            and (v.pcpu is None or v.pcpu == cpu)
            and cpu in home_cores.get(v.name, ())
            and (not quarantined or v.name not in quarantined)
        ]
        if not candidates:
            self._last_pick[cpu] = (None, 0, 0)
            return Decision(
                None, quantum_end=now + self.l2_slice_ns, level=3, cost_ns=cost
            )
        cursor = self._rr_cursor.get(cpu, 0)
        chosen = candidates[cursor % len(candidates)]
        self._rr_cursor[cpu] = cursor + 1
        self.degraded_picks += 1
        self._last_pick[cpu] = (chosen, chosen.runtime_ns, 3)
        return Decision(
            chosen, quantum_end=now + self.l2_slice_ns, level=3, cost_ns=cost
        )

    def mark_degraded(self, cpu: int, reason: str) -> None:
        """Drop ``cpu`` to the degraded round-robin dispatcher."""
        self.degraded_cores[cpu] = reason
        if self.machine is not None:
            self.machine.request_resched(cpu)

    def clear_degraded(self, cpu: int) -> None:
        """Return ``cpu`` to table-driven dispatch."""
        if self.degraded_cores.pop(cpu, None) is not None and self.machine is not None:
            self.machine.request_resched(cpu)

    def quarantine(self, name: str, reason: str) -> None:
        """Bar vCPU ``name`` from dispatch at every level.

        A running quarantined vCPU is preempted at the next resched on
        its core (requested here); it stays runnable but is skipped by
        the table path, the second level, and degraded round-robin until
        :meth:`release_quarantine`.
        """
        self._quarantined[name] = reason
        vcpu = self._vcpus.get(name)
        if vcpu is not None and vcpu.pcpu is not None and self.machine is not None:
            self.machine.request_resched(vcpu.pcpu)

    def release_quarantine(self, name: str) -> None:
        """Re-admit a quarantined vCPU (no-op if not quarantined)."""
        if self._quarantined.pop(name, None) is None:
            return
        vcpu = self._vcpus.get(name)
        if (
            vcpu is not None
            and vcpu.state is not VCpuState.BLOCKED
            and self.machine is not None
        ):
            homes = self.table.home_cores.get(name, ())
            if homes:
                self.machine.request_resched(homes[0])

    @property
    def quarantined(self) -> Dict[str, str]:
        """Currently quarantined vCPUs (name -> reason), a copy."""
        return dict(self._quarantined)

    def on_wakeup(self, vcpu: VCpu, now: int) -> WakeAction:
        cost = self._wake_cost
        processing = vcpu.last_cpu
        if self._quarantined and vcpu.name in self._quarantined:
            # Quarantined vCPUs never trigger rescheds; they are picked
            # up (if released) at the next natural decision point.
            return WakeAction(cpu=processing, cost_ns=cost, resched_cpu=None)
        # The table tells us where the vCPU currently has an allocation.
        for core in self.table.home_cores.get(vcpu.name, ()):
            table = self.table.cores[core]
            alloc = table.lookup(now)
            if alloc is not None and alloc.vcpu == vcpu.name:
                return WakeAction(
                    cpu=processing,
                    cost_ns=cost,
                    resched_cpu=core,
                    ipi_delay_ns=IPI_WIRE_NS,
                )
        # No current allocation: uncapped vCPUs may use an idling home core.
        home = self._l2_home(vcpu)
        if (
            self.work_conserving
            and home is not None
            and self.machine.cpus[home].current is None
        ):
            return WakeAction(
                cpu=processing, cost_ns=cost, resched_cpu=home, ipi_delay_ns=IPI_WIRE_NS
            )
        # Capped (or no idle core): safely ignored; the vCPU will be seen
        # as runnable when its next allocation begins.
        return WakeAction(cpu=processing, cost_ns=cost, resched_cpu=None)

    def array_program(self, machine):
        """Compile the table into the fused array-dispatch program.

        Only the stock dispatcher configuration is compilable: subclasses
        (and the ``"trailing"`` split policy, whose L2 membership is
        recomputed per pick) fall back to the object engine.  The program
        receives the second-level constants and state factory here so
        :mod:`repro.sim.arraycore` never imports the scheduler layer.
        """
        if type(self) is not TableauScheduler or self.split_l2_policy != "none":
            return None
        from repro.sim.arraycore import TableauArrayProgram

        return TableauArrayProgram(
            machine,
            self,
            l2_scan=L2_SCAN_NS,
            l2_min_budget=L2_MIN_BUDGET_NS,
            l2_state_factory=_L2State,
        )

    def post_schedule(
        self, cpu: int, prev: Optional[VCpu], chosen: Optional[VCpu], now: int
    ) -> float:
        cost = self._migrate_cost
        if prev is not None and prev is not chosen:
            waiter = prev.sched_data.pop("tableau.waiter", None)
            if waiter is not None:
                cost += self.machine.costs.ipi()
                self.machine.send_resched_ipi(int(waiter), delay=IPI_WIRE_NS)
        return cost

    def runnable_on(self, cpu: int) -> int:
        state = self._l2.get(cpu)
        if state is None:
            return 0
        return sum(1 for v in state.members if v.runnable)

    # ------------------------------------------------------------------
    # Second-level scheduler (epoch-based fair share)
    # ------------------------------------------------------------------

    def _l2_home(self, vcpu: VCpu) -> Optional[int]:
        """Core on which a vCPU takes part in second-level scheduling."""
        if vcpu.capped:
            return None
        homes = self.table.home_cores.get(vcpu.name, [])
        if not homes:
            return None
        if len(homes) > 1:
            if self.split_l2_policy == "none":
                # Paper prototype: split vCPUs get no second-level service.
                return None
            # Trailing-core policy: participate where it last received a
            # guaranteed allocation; approximated by the first home core
            # until the vCPU actually runs (last_cpu tracks it afterwards).
            return None  # dynamic; resolved in _l2_pick via last_cpu
        return homes[0]

    def _l2_members(self, cpu: int) -> List[VCpu]:
        state = self._l2.get(cpu)
        members = list(state.members) if state is not None else []
        if self.split_l2_policy == "trailing":
            # Runs on every L2 pick (via the @hotpath _l2_pick), so the
            # trailing-member scan appends in place rather than building
            # a generator per call.
            home_cores = self.table.home_cores
            for v in self._vcpus.values():
                if (
                    not v.capped
                    and len(home_cores.get(v.name, [])) > 1
                    and v.last_cpu == cpu
                ):
                    members.append(v)
        return members

    @hotpath
    def _l2_pick(
        self, cpu: int, now: int, state: Optional[_L2State] = None
    ) -> Tuple[Optional[VCpu], int]:
        if self.split_l2_policy == "none":
            # Fast path: the membership list is fixed after assembly, so
            # iterate it in place instead of rebuilding a copy per pick
            # (the caller passes the per-core state it already fetched).
            if state is None:
                state = self._l2.get(cpu)
                if state is None:
                    return None, 0
            members: Sequence[VCpu] = state.members
        else:
            state = self._l2.setdefault(cpu, _L2State())
            members = self._l2_members(cpu)
        budgets = state.budgets
        quarantined = self._quarantined
        candidates: List[VCpu] = []
        any_replenished = False
        blocked = VCpuState.BLOCKED
        for v in members:
            if (
                v.state is not blocked
                and (v.pcpu is None or v.pcpu == cpu)
                and (not quarantined or v.name not in quarantined)
            ):
                candidates.append(v)
                if budgets.get(v.name, 0) >= L2_MIN_BUDGET_NS:
                    any_replenished = True
        if not candidates:
            return None, 0
        if not any_replenished:
            # Replenish: divide the epoch evenly among runnable vCPUs.
            share = self.l2_epoch_ns // len(candidates)
            for v in candidates:
                budgets[v.name] = share
        best: Optional[VCpu] = None
        best_budget = 0
        for v in candidates:
            budget = budgets.get(v.name, 0)
            if (
                best is None
                or budget > best_budget
                or (budget == best_budget and v.name > best.name)
            ):
                best = v
                best_budget = budget
        if best_budget < L2_MIN_BUDGET_NS:
            return None, 0
        return best, best_budget
