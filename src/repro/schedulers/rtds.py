"""Model of Xen's RTDS scheduler (from the RT-Xen project).

RTDS is, like Tableau, rooted in the periodic task model: each vCPU has
a budget and a period, its budget replenishes at every period boundary,
and runnable vCPUs with remaining budget are scheduled globally by EDF
(earliest period-end first).  Unlike Tableau it makes *every* decision
online against a global runqueue protected by a single lock — the
design property responsible for its overhead explosion on big machines
(Table 2: 168 us mean migrate cost on 48 cores).

The global lock here is the FIFO lock of :mod:`repro.sim.overheads`, so
lock waits are emergent from the actual operation rate of the simulated
workload, not a fitted constant: on 16 cores the same code yields a few
microseconds, matching Table 1.

RTDS enforces budgets strictly (capped-only, per the paper's scenario
matrix); there is no work-conserving mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.schedulers.base import Decision, Scheduler, WakeAction
from repro.sim.overheads import IPI_WIRE_NS, GlobalLock
from repro.sim.vm import VCpu

#: RTDS checks budgets on a fixed quantum, causing frequent invocations.
QUANTUM_NS = 1_000_000

#: Residual budget below this is treated as depleted: scheduling-
#: operation overheads make slivers of budget impossible to enforce
#: (attempting to would busy-loop the scheduler at pure overhead).
DEPLETION_THRESHOLD_NS = 50_000

#: Budget forfeited when a vCPU *blocks*: RTDS's budget accounting is
#: quantum-granular (1 ms scheduling quantum), so a vCPU that wakes,
#: serves a short request, and blocks again forfeits the rest of the
#: partially used quantum.  CPU-bound guests that run their budget to
#: depletion are unaffected.  This is the documented RT-Xen weakness
#: with I/O-intensive guests and the mechanism behind RTDS's lower
#: SLA-aware peak throughput in Fig. 7 (~1,000-1,300 req/s at 1 KiB
#: versus Tableau's ~1,600 under a 100 ms p99 SLA).
BLOCK_FORFEIT_NS = 900_000

# Cost constants (ns).  Each operation acquires the global lock; holds
# model the critical sections of Xen's sched_rt.c (runqueue insertion is
# a sorted-list walk, the post-schedule path scans for a preemption
# target across the whole machine).
PICK_BASE_NS: float = 2_290.0
PICK_PER_VCPU_NS: float = 12.0
WAKE_BASE_NS: float = 500.0
WAKE_SCAN_PER_CORE_NS: float = 140.0  # lock-free tickle scan over all cores
WAKE_HOLD_BASE_NS: float = 800.0
WAKE_HOLD_PER_ENTRY_NS: float = 16.0
MIGRATE_BASE_NS: float = 300.0
MIGRATE_SCAN_PER_CORE_NS: float = 380.0  # lock-free balance scan over all cores
MIGRATE_HOLD_BASE_NS: float = 1_200.0
MIGRATE_HOLD_PER_ENTRY_NS: float = 110.0


@dataclass
class _RtdsState:
    budget_ns: int
    period_ns: int
    remaining_ns: int = 0
    deadline: int = 0  # absolute end of the current period
    runtime_seen: int = 0  # vcpu.runtime_ns at the last settlement


class RtdsScheduler(Scheduler):
    """Global EDF with per-vCPU (budget, period) reservations.

    Args:
        reservations: vCPU name -> ``(budget_ns, period_ns)``.  The
            benchmarks configure these identically to the parameters
            Tableau's planner derives, as the paper does ("RTDS was
            configured to match the parameters of Tableau", Sec. 7.2).
    """

    name = "rtds"

    def __init__(self, reservations: Dict[str, Tuple[int, int]]) -> None:
        super().__init__()
        self.reservations = dict(reservations)
        self._state: Dict[str, _RtdsState] = {}
        self._vcpus: Dict[str, VCpu] = {}
        self._cpu_pool: List[int] = []
        self.lock = GlobalLock()

    def attach(self, machine) -> None:
        super().attach(machine)
        self._cpu_pool = machine.topology.guest_cores
        self.lock.max_waiters = max(1, machine.topology.num_cores - 1)

    def add_vcpu(self, vcpu: VCpu) -> None:
        try:
            budget, period = self.reservations[vcpu.name]
        except KeyError:
            raise ConfigurationError(
                f"no RTDS reservation configured for {vcpu.name}"
            ) from None
        self._vcpus[vcpu.name] = vcpu
        self._state[vcpu.name] = _RtdsState(
            budget_ns=budget, period_ns=period, remaining_ns=budget, deadline=period
        )
        # partial (not a lambda) so a freshly built scenario pickles:
        # campaign shards ship Scenario objects to worker processes.
        self.machine.engine.at(period, partial(self._replenish, vcpu))

    # ------------------------------------------------------------------
    # Budget management
    # ------------------------------------------------------------------

    def _replenish(self, vcpu: VCpu) -> None:
        now = self.machine.engine.now
        state = self._state[vcpu.name]
        self._burn(vcpu, now)
        # Overdraft (quantum forfeiture past zero) carries into the new
        # period; budget never accumulates beyond one period's worth.
        state.remaining_ns = min(
            state.budget_ns, state.remaining_ns + state.budget_ns
        )
        state.deadline += state.period_ns
        self.machine.engine.at(state.deadline, partial(self._replenish, vcpu))
        if vcpu.runnable:
            target = self._preemption_target(vcpu, now)
            if target is not None:
                self.machine.request_resched(target, delay=IPI_WIRE_NS)

    def _burn(self, vcpu: VCpu, now: int) -> None:
        state = self._state[vcpu.name]
        ran = vcpu.runtime_ns - state.runtime_seen
        state.runtime_seen = vcpu.runtime_ns
        state.remaining_ns -= ran

    def _global_runnable(self) -> List[VCpu]:
        return [v for v in self._vcpus.values() if v.runnable]

    def _runqueue_census(self) -> int:
        """Runnable vCPUs still holding budget — the population the
        runqueue scans actually walk (depleted vCPUs live on the
        replenishment queue instead).

        Counted with a plain loop: this runs after every deschedule and
        wakeup (reachable from the resched hot path), where a generator
        per call is exactly the allocation the hot-path rules ban.
        """
        state = self._state
        count = 0
        for v in self._vcpus.values():
            if (
                v.runnable
                and state[v.name].remaining_ns >= DEPLETION_THRESHOLD_NS
            ):
                count += 1
        return count

    # ------------------------------------------------------------------
    # Scheduling entry points
    # ------------------------------------------------------------------

    def pick_next(self, cpu: int, now: int) -> Decision:
        if cpu not in self._cpu_pool:
            return Decision(None, quantum_end=None, cost_ns=0.0)
        # The EDF pick itself walks the (deadline-sorted) runqueue inside
        # a short critical section; modelled as scaling with the vCPU
        # census rather than via lock waits (Xen's rt_schedule holds the
        # lock only briefly on this path).
        cost = PICK_BASE_NS + PICK_PER_VCPU_NS * len(self._vcpus)

        current = self.machine.cpus[cpu].current
        if current is not None:
            self._burn(current, now)

        chosen = self._pick_edf(cpu, now)
        if chosen is None:
            return Decision(None, quantum_end=None, cost_ns=cost)
        state = self._state[chosen.name]
        quantum = now + min(QUANTUM_NS, max(1, state.remaining_ns))
        return Decision(chosen, quantum_end=quantum, level=1, cost_ns=cost)

    def _pick_edf(self, cpu: int, now: int) -> Optional[VCpu]:
        best: Optional[VCpu] = None
        best_deadline = 0
        for vcpu in self._vcpus.values():
            state = self._state[vcpu.name]
            if not vcpu.runnable or state.remaining_ns < DEPLETION_THRESHOLD_NS:
                continue
            if vcpu.pcpu is not None and vcpu.pcpu != cpu:
                continue
            if best is None or state.deadline < best_deadline:
                best = vcpu
                best_deadline = state.deadline
        return best

    def on_block(self, vcpu: VCpu, now: int) -> None:
        self._burn(vcpu, now)
        # Quantum forfeiture: blocking mid-quantum abandons the rest of
        # the accounting quantum (see BLOCK_FORFEIT_NS).  May drive the
        # budget negative; the overdraft carries into the next period.
        state = self._state[vcpu.name]
        state.remaining_ns -= BLOCK_FORFEIT_NS

    def on_wakeup(self, vcpu: VCpu, now: int) -> WakeAction:
        runnable = self._runqueue_census()
        hold = WAKE_HOLD_BASE_NS + WAKE_HOLD_PER_ENTRY_NS * runnable
        # Wakeup is a short path: it inserts into the runqueue and bails,
        # so it rarely queues behind more than a few long holders.
        wait = self.lock.acquire(now, hold, max_wait_holds=4)
        cost = (
            WAKE_BASE_NS
            + WAKE_SCAN_PER_CORE_NS * self.machine.topology.num_cores
            + wait
            + hold
        )
        state = self._state[vcpu.name]
        if state.remaining_ns < DEPLETION_THRESHOLD_NS:
            # Out of budget: becomes eligible again at its replenishment.
            return WakeAction(cpu=vcpu.last_cpu, cost_ns=cost, resched_cpu=None)
        target = self._preemption_target(vcpu, now)
        return WakeAction(
            cpu=vcpu.last_cpu,
            cost_ns=cost,
            resched_cpu=target,
            ipi_delay_ns=IPI_WIRE_NS,
        )

    def post_schedule(
        self, cpu: int, prev: Optional[VCpu], chosen: Optional[VCpu], now: int
    ) -> float:
        # The expensive path the paper highlights: after descheduling,
        # RTDS load-balances under the global lock, walking the runqueue.
        runnable = self._runqueue_census()
        # The balance scan's critical section walks per-core state for
        # the runnable vCPUs it considers, so the hold grows with both
        # the runnable census and the machine size.  The scan is bounded
        # (the real code walks a sorted runqueue prefix), which keeps an
        # overloaded machine from spiralling: overheads starve guests,
        # which inflates the runnable census, which would otherwise
        # inflate the holds further.
        machine_scale = self.machine.topology.num_cores / 16.0
        hold = MIGRATE_HOLD_BASE_NS + (
            MIGRATE_HOLD_PER_ENTRY_NS * min(runnable, 48) * machine_scale ** 0.75
        )
        wait = self.lock.acquire(now, hold)
        return (
            MIGRATE_BASE_NS
            + MIGRATE_SCAN_PER_CORE_NS * self.machine.topology.num_cores
            + wait
            + hold
        )

    def runnable_on(self, cpu: int) -> int:
        return len(self._global_runnable())

    # ------------------------------------------------------------------

    def _preemption_target(self, waker: VCpu, now: int) -> Optional[int]:
        """Idle core first; otherwise the core running the latest deadline
        (if later than the waker's), global-EDF style."""
        waker_deadline = self._state[waker.name].deadline
        worst_cpu: Optional[int] = None
        worst_deadline = waker_deadline
        for cpu in self._cpu_pool:
            running = self.machine.cpus[cpu].current
            if running is None:
                return cpu
            state = self._state.get(running.name)
            if state is None:
                continue
            if state.deadline > worst_deadline:
                worst_deadline = state.deadline
                worst_cpu = cpu
        return worst_cpu
