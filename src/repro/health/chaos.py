"""Chaos harness: a full stack under runtime fault injection.

Assembles the complete pipeline — planner daemon, hypercall, Tableau
dispatcher, machine, health supervisor, invariant auditor — with a
:class:`~repro.faults.FaultPlan` wired into every layer, runs it for a
stretch of simulated time, and returns everything observable.  This is
the engine behind ``python -m repro chaos`` and the acceptance suite in
``tests/health/``: the bar is that the simulation *completes* (no
crash), affected cores degrade rather than wedge, quarantines are
reported with reasons, and the auditor stays clean.

Periodic same-census regenerations (Sec. 7.5's rotation cadence) give
the run a steady stream of table pushes, so switch-site faults have
activation wraps to fire on and degraded cores have clean tables to
recover with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import ReproError
from repro.experiments.scenarios import (
    VM_LATENCY_NS,
    VM_UTILIZATION,
    background_workload,
)
from repro.core.params import make_vm
from repro.faults.audit import InvariantAuditor
from repro.health.supervisor import HealthSupervisor
from repro.schedulers.tableau import TableauScheduler
from repro.sim.arraycore import ENGINES, ArrayMachine
from repro.sim.machine import Machine
from repro.sim.tracing import Tracer
from repro.sim.vm import VCpu
from repro.topology import xeon_16core
from repro.workloads import IoLoop
from repro.xen.daemon import PlannerDaemon
from repro.xen.hypercall import TableHypercall

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.faults.plan import FaultPlan
    from repro.topology import Topology


@dataclass
class ChaosResult:
    """Everything a chaos run produced, for asserts and reporting."""

    seed: int
    seconds: float
    engine: str
    health_report: Dict[str, object]
    audit_violations: List[str]
    audits: int
    injected_by_site: Dict[str, int]
    replans: int = 0
    committed_replans: int = 0
    # Live objects for white-box assertions in tests.
    machine: Optional[Machine] = None
    scheduler: Optional[TableauScheduler] = None
    supervisor: Optional[HealthSupervisor] = None
    daemon: Optional[PlannerDaemon] = None
    hypercall: Optional[TableHypercall] = None
    auditor: Optional[InvariantAuditor] = None
    regen_failures: List[str] = field(default_factory=list)

    @property
    def audit_clean(self) -> bool:
        return not self.audit_violations


def run_chaos(
    faults: Optional["FaultPlan"] = None,
    *,
    seconds: float = 0.2,
    seed: int = 42,
    topology: Optional["Topology"] = None,
    num_vms: Optional[int] = None,
    capped: bool = False,
    health: bool = True,
    regen_period_ns: Optional[int] = None,
    audit_period_ns: int = 10_000_000,
    strict_audit: bool = False,
    watchdog_period_ns: int = 1_000_000,
    stuck_threshold: int = 3,
    recovery_backoff_ns: int = 2_000_000,
    engine: str = "object",
) -> ChaosResult:
    """Run the full stack under ``faults`` for ``seconds`` of simulated time.

    Args:
        faults: The fault plan, consulted by every layer (daemon,
            hypercall, dispatcher, machine).  ``None`` runs a fault-free
            baseline — useful for differential assertions.
        seconds: Simulated duration.
        seed: Simulation seed (bit-identical runs per seed).
        topology: Defaults to the paper's 16-core machine.
        num_vms: Defaults to four per guest core (the high-density census).
        capped: Whether guests are held to their reservations.
        health: Install the supervisor (watchdogs, monitors, quarantine,
            recovery).  Off, the run shows what faults do unsupervised.
        engine: Dispatch backend (:data:`repro.sim.ENGINES`): ``"array"``
            plays the compiled table arrays; faulted/degraded stretches
            fall back per call, so results are bit-identical to
            ``"object"``.
        regen_period_ns: Cadence of periodic same-census replans (the
            stream of pushes switch faults fire on).  Defaults to two
            table rounds, so every staged table reaches its activation
            wrap before the next push would overwrite it.
        audit_period_ns: Invariant audit cadence.
        strict_audit: Raise on the first invariant violation instead of
            recording it.
        watchdog_period_ns: Forwarded to the supervisor.
        stuck_threshold: Forwarded to the supervisor.
        recovery_backoff_ns: Forwarded to the supervisor.
    """
    if engine not in ENGINES:
        raise ReproError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    topo = topology if topology is not None else xeon_16core()
    count = num_vms if num_vms is not None else 4 * len(topo.guest_cores)
    specs = [
        make_vm(f"vm{i:02d}", VM_UTILIZATION, VM_LATENCY_NS, capped=capped)
        for i in range(count)
    ]

    daemon = PlannerDaemon(topo, faults=faults)
    plan = daemon.replan(specs, reason="initial census")
    scheduler = TableauScheduler(plan.table, faults=faults)
    machine_cls = ArrayMachine if engine == "array" else Machine
    machine = machine_cls(topo, scheduler, seed=seed, tracer=Tracer(), faults=faults)
    hypercall = TableHypercall(scheduler, faults=faults)
    daemon.hypercall = hypercall

    machine.add_vcpu(VCpu("vm00.vcpu0", IoLoop(), capped=capped))
    for i in range(1, count):
        machine.add_vcpu(
            VCpu(
                f"vm{i:02d}.vcpu0",
                background_workload("io", i),
                capped=capped,
            )
        )

    supervisor: Optional[HealthSupervisor] = None
    if health:
        supervisor = HealthSupervisor(
            machine,
            scheduler,
            daemon=daemon,
            specs=specs,
            watchdog_period_ns=watchdog_period_ns,
            stuck_threshold=stuck_threshold,
            recovery_backoff_ns=recovery_backoff_ns,
        )
        supervisor.start()

    auditor = InvariantAuditor(hypercall, daemon=daemon, strict=strict_audit)
    auditor.attach(machine, audit_period_ns)

    regen_failures: List[str] = []
    # Default cadence: a bit over two table rounds.  Two rounds let every
    # staged table reach its activation wrap before the next push would
    # overwrite it; the extra fifth-of-a-round de-phases the replan tick
    # from the wrap itself (a push landing exactly on the wrap overwrites
    # the staged table at the instant it was due to activate).
    length = plan.table.length_ns
    regen_period = (
        regen_period_ns if regen_period_ns is not None else 2 * length + length // 5
    )

    def regenerate() -> None:
        try:
            daemon.replan(specs, reason="periodic regeneration")
        except ReproError as error:
            # A failed regeneration is survivable (the old table keeps
            # serving); record it and try again next period.
            regen_failures.append(f"{type(error).__name__}: {error}")

    regen_handle = machine.engine.every(regen_period, regenerate)

    try:
        machine.run(int(seconds * 1e9))
    finally:
        regen_handle.cancel()
        auditor.detach()
        if supervisor is not None:
            supervisor.stop()

    auditor.check()  # one final audit at quiescence
    return ChaosResult(
        seed=seed,
        seconds=seconds,
        engine=engine,
        health_report=supervisor.report() if supervisor is not None else {},
        audit_violations=list(auditor.violations),
        audits=auditor.audits,
        injected_by_site=(
            dict(faults.injected_by_site()) if faults is not None else {}
        ),
        replans=daemon.total_replans,
        committed_replans=daemon.committed_replans,
        machine=machine,
        scheduler=scheduler,
        supervisor=supervisor,
        daemon=daemon,
        hypercall=hypercall,
        auditor=auditor,
        regen_failures=regen_failures,
    )
