"""The health supervisor: detection, quarantine, and recovery policy.

This is the dom0-side brain of the health subsystem.  It owns one
:class:`~repro.health.watchdog.CoreWatchdog` per core and one
:class:`~repro.health.guarantees.GuaranteeMonitor`, turns their raw
observations (plus the hypervisor's softlockup-style per-guest overrun
counters) into actions, and drives recovery through the regular control
plane rather than by reaching into the dispatcher:

* a guest that repeatedly overruns its voluntary yield points is
  **quarantined** — barred from dispatch at every level — and, when a
  toolstack is attached, its domain is reconfigured down to a minimal
  reservation so the next plan stops setting aside capacity for it;
* a core stuck in degraded round-robin mode (failed mid-activation
  table switch) triggers a **recovery replan**: the planner daemon
  pushes a fresh table, and the dispatcher's next successful switch
  returns the core to table-driven dispatch.  Failed recoveries retry
  with backoff until one sticks.

Everything the supervisor did — incidents, quarantines, recoveries —
is available from :meth:`HealthSupervisor.report` for post-run asserts
and the CLI's chaos report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import ReproError
from repro.health.guarantees import (
    DEFAULT_WINDOW_NS,
    GuaranteeMonitor,
    GuaranteeViolation,
)
from repro.health.watchdog import (
    DEFAULT_WATCHDOG_PERIOD_NS,
    CoreIncident,
    CoreWatchdog,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.params import VMSpec
    from repro.schedulers.tableau import TableauScheduler
    from repro.sim.engine import RecurringHandle
    from repro.sim.machine import Machine
    from repro.xen.daemon import PlannerDaemon
    from repro.xen.toolstack import Toolstack

#: A guest is declared stuck after this many forced overruns.
DEFAULT_STUCK_THRESHOLD = 3

#: Reservation a quarantined domain is reconfigured down to (5%): enough
#: for the guest to make token progress once released, reclaiming the
#: rest of its share for healthy neighbours.
QUARANTINE_UTILIZATION = 0.05


@dataclass
class QuarantineRecord:
    """One vCPU's quarantine episode."""

    vcpu: str
    reason: str
    at_ns: int
    released_at_ns: Optional[int] = None
    reconfigured: bool = False

    @property
    def active(self) -> bool:
        return self.released_at_ns is None


@dataclass
class RecoveryAttempt:
    """One degraded-core recovery replan."""

    at_ns: int
    degraded_cores: List[int] = field(default_factory=list)
    committed: bool = False
    error: str = ""


class HealthSupervisor:
    """Ties watchdogs, monitors, quarantine, and recovery together.

    Args:
        machine: The machine under supervision.
        scheduler: Its Tableau dispatcher.
        toolstack: Full control plane; enables quarantine-driven domain
            reconfiguration and provides the census for recovery replans.
        daemon: Planner daemon used for recovery replans when no
            toolstack is attached (pass ``specs`` alongside).
        specs: Census to replan with in daemon-only mode.
        watchdog_period_ns: Per-core stall check cadence.
        monitor_window_ns: (U, L) monitor sampling window.
        stuck_threshold: Forced overruns before a guest is quarantined.
        recovery_backoff_ns: Delay before (re)trying a recovery replan.
    """

    def __init__(
        self,
        machine: "Machine",
        scheduler: "TableauScheduler",
        toolstack: Optional["Toolstack"] = None,
        daemon: Optional["PlannerDaemon"] = None,
        specs: Optional[List["VMSpec"]] = None,
        watchdog_period_ns: int = DEFAULT_WATCHDOG_PERIOD_NS,
        monitor_window_ns: int = DEFAULT_WINDOW_NS,
        stuck_threshold: int = DEFAULT_STUCK_THRESHOLD,
        recovery_backoff_ns: int = 2_000_000,
    ) -> None:
        self.machine = machine
        self.scheduler = scheduler
        self.toolstack = toolstack
        self.daemon = toolstack.daemon if toolstack is not None else daemon
        self.specs = specs
        self.stuck_threshold = stuck_threshold
        self.recovery_backoff_ns = recovery_backoff_ns
        self.watchdogs = [
            CoreWatchdog(
                machine,
                scheduler,
                cpu,
                period_ns=watchdog_period_ns,
                on_incident=self._on_incident,
            )
            for cpu in range(machine.topology.num_cores)
        ]
        self.monitor = GuaranteeMonitor(
            machine,
            scheduler,
            window_ns=monitor_window_ns,
            on_violation=self._on_violation,
        )
        self.incidents: List[CoreIncident] = []
        self.quarantines: Dict[str, QuarantineRecord] = {}
        self.recoveries: List[RecoveryAttempt] = []
        self.commits_seen = 0
        self._supervise_period_ns = watchdog_period_ns
        self._handle: Optional["RecurringHandle"] = None
        self._recovery_pending = False
        self._degraded_seen: Dict[int, str] = {}
        if self.daemon is not None:
            previous = self.daemon.on_commit

            def chained(result, record, _previous=previous) -> None:
                if _previous is not None:
                    _previous(result, record)
                self.commits_seen += 1

            self.daemon.on_commit = chained

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        for watchdog in self.watchdogs:
            watchdog.start()
        self.monitor.start()
        if self._handle is not None:
            self._handle.cancel()
        self._handle = self.machine.engine.every(
            self._supervise_period_ns, self._supervise
        )

    def stop(self) -> None:
        for watchdog in self.watchdogs:
            watchdog.stop()
        self.monitor.stop()
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------
    # Observation feeds
    # ------------------------------------------------------------------

    def _on_incident(self, incident: CoreIncident) -> None:
        self.incidents.append(incident)

    def _on_violation(self, violation: GuaranteeViolation) -> None:
        # Violations are already recorded by the monitor; the supervisor
        # hook exists so persistent blackout of a single vCPU can feed
        # future policy without re-scanning the monitor's log.
        del violation

    # ------------------------------------------------------------------
    # The periodic supervision pass
    # ------------------------------------------------------------------

    def _supervise(self) -> None:
        now = self.machine.engine.now
        # 1. Quarantine guests the hypervisor counts as stuck.
        overruns = self.machine.stuck_overruns_by_vcpu
        if overruns:
            for name, count in overruns.items():
                if count >= self.stuck_threshold and name not in self.quarantines:
                    self.quarantine_vcpu(
                        name, f"stuck guest: {count} forced overruns"
                    )
        # 2. Degraded cores: drive a recovery replan through the planner.
        degraded = self.scheduler.degraded_cores
        if degraded:
            for cpu, reason in degraded.items():
                if cpu not in self._degraded_seen:
                    self._degraded_seen[cpu] = reason
                    self.incidents.append(
                        CoreIncident(
                            cpu=cpu, kind="degraded", at_ns=now, detail=reason
                        )
                    )
            if (
                not self._recovery_pending
                and self.scheduler.pending_table is None
                and self.daemon is not None
            ):
                self._recovery_pending = True
                self.machine.engine.after(
                    self.recovery_backoff_ns, self._recovery_replan
                )
        else:
            self._degraded_seen.clear()

    def _recovery_replan(self) -> None:
        self._recovery_pending = False
        if not self.scheduler.degraded_cores:
            return  # recovered on its own (e.g. a periodic replan landed)
        if self.scheduler.pending_table is not None:
            return  # a clean table is already staged; let it activate
        specs = (
            self.toolstack.registry.specs
            if self.toolstack is not None
            else self.specs
        )
        if self.daemon is None or not specs:
            return
        attempt = RecoveryAttempt(
            at_ns=self.machine.engine.now,
            degraded_cores=sorted(self.scheduler.degraded_cores),
        )
        self.recoveries.append(attempt)
        try:
            self.daemon.replan(specs, reason="health: degraded-core recovery")
            attempt.committed = True
        except ReproError as error:
            attempt.error = f"{type(error).__name__}: {error}"
            # Keep trying: degraded mode is survivable but not a steady
            # state anyone should stay in.
            self._recovery_pending = True
            self.machine.engine.after(
                self.recovery_backoff_ns, self._recovery_replan
            )

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------

    def quarantine_vcpu(self, name: str, reason: str) -> QuarantineRecord:
        """Bar ``name`` from dispatch and reclaim its reservation."""
        now = self.machine.engine.now
        record = QuarantineRecord(vcpu=name, reason=reason, at_ns=now)
        self.quarantines[name] = record
        self.scheduler.quarantine(name, reason)
        if self.toolstack is not None:
            domain = name.split(".")[0]
            try:
                spec = next(
                    s for s in self.toolstack.registry.specs if s.name == domain
                )
                latency_ns = spec.vcpus[0].latency_ns
                self.toolstack.reconfigure_vm(
                    domain, QUARANTINE_UTILIZATION, latency_ns
                )
                record.reconfigured = True
            except (StopIteration, ReproError):
                # repro: allow[err-swallowed-error] -- the failure is
                # already observable: record.reconfigured stays False and
                # the quarantine itself still stands — the guest stays
                # off-CPU under the old table.
                pass
        return record

    def release_vcpu(self, name: str) -> None:
        """Lift a quarantine (e.g. after operator intervention)."""
        record = self.quarantines.get(name)
        if record is None or not record.active:
            return
        record.released_at_ns = self.machine.engine.now
        self.scheduler.release_quarantine(name)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self) -> Dict[str, object]:
        """Everything the health layer saw and did, as plain data."""
        machine = self.machine
        scheduler = self.scheduler
        return {
            "watchdog": {
                "checks": sum(w.checks for w in self.watchdogs),
                "kicks": sum(w.kicks for w in self.watchdogs),
                "kicks_by_cpu": {
                    w.cpu: w.kicks for w in self.watchdogs if w.kicks
                },
            },
            "guarantees": {
                "samples": self.monitor.samples,
                "violations": self.monitor.violations_by_kind(),
            },
            "faults_observed": {
                "lost_ipis": machine.lost_ipis,
                "delayed_ipis": machine.delayed_ipis,
                "jittered_timers": machine.jittered_timers,
                "stuck_overruns": machine.stuck_overruns,
            },
            "dispatch": {
                "table_switches": scheduler.table_switches,
                "failed_switches": scheduler.failed_switches,
                "degraded_picks": scheduler.degraded_picks,
                "degraded_cores": dict(scheduler.degraded_cores),
            },
            "quarantines": {
                name: {
                    "reason": record.reason,
                    "at_ns": record.at_ns,
                    "released_at_ns": record.released_at_ns,
                    "reconfigured": record.reconfigured,
                }
                for name, record in self.quarantines.items()
            },
            "incidents": [
                {
                    "cpu": incident.cpu,
                    "kind": incident.kind,
                    "at_ns": incident.at_ns,
                    "detail": incident.detail,
                }
                for incident in self.incidents
            ],
            "recoveries": [
                {
                    "at_ns": attempt.at_ns,
                    "degraded_cores": attempt.degraded_cores,
                    "committed": attempt.committed,
                    "error": attempt.error,
                }
                for attempt in self.recoveries
            ],
            "commits_seen": self.commits_seen,
        }
