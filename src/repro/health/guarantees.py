"""Online (U, L) guarantee-violation monitors.

Tableau's contract per vCPU is a pair (U, L): a utilization share and a
maximum service blackout, both readable straight off the installed table
(:meth:`~repro.core.table.SystemTable.utilization_of` and
:meth:`~repro.core.table.SystemTable.max_blackout_ns`).  The planner
proves them at plan time; this module *watches* them at run time, so
injected faults (lost IPIs, skewed clocks, stuck guests) that silently
erode guarantees become visible incidents instead of quiet latency.

Two feeds drive the monitor:

* every dispatch record the tracer emits (via
  ``Tracer.dispatch_listeners``) timestamps the last service of each
  vCPU — the L side;
* a periodic sampler (``SimEngine.every``) compares each vCPU's runtime
  delta over the window against its table share — the U side.

The monitor is purely observational: it never touches the scheduler, so
running it cannot change a simulation's trace fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.schedulers.tableau import TableauScheduler
    from repro.sim.engine import RecurringHandle
    from repro.sim.machine import Machine

#: Default monitoring window: 50 ms.  The utilization check needs the
#: window to be comfortably larger than a vCPU's blackout bound (the
#: evaluation's goal is 20 ms) before under-service is provable — see
#: the blackout-aware threshold in :meth:`GuaranteeMonitor._sample`.
DEFAULT_WINDOW_NS = 50_000_000


@dataclass
class GuaranteeViolation:
    """One observed breach of a vCPU's (U, L) contract."""

    kind: str  # "utilization" | "blackout"
    vcpu: str
    at_ns: int
    observed: float  # utilization fraction, or gap length in ns
    bound: float  # guaranteed utilization, or allowed blackout in ns


class GuaranteeMonitor:
    """Watches every vCPU's delivered service against its table contract.

    Args:
        machine: Source of runtimes, states, and the tracer feed.
        scheduler: The Tableau dispatcher whose live table defines the
            (U, L) bounds (switches are picked up automatically).
        window_ns: Sampling window for the utilization check.
        u_tolerance: Fraction of the *provable* minimum service below
            which a continuously runnable vCPU counts as under-served.
            The (U, L) contract only guarantees ``U * (window - L)`` of
            service in an arbitrary window (the window may open right as
            a maximal blackout starts), so the check compares against
            ``U * (1 - L/window) * u_tolerance`` and is inert when the
            window is shorter than the vCPU's blackout bound.  Kept well
            below 1.0 so boundary-straddling windows never
            false-positive.
        l_slack: Multiple of the table's max blackout a service gap must
            exceed to count as a violation (wakeup costs and IPI wire
            time make exact bounds unachievable even when healthy).
        on_violation: Callback invoked per violation (supervisor feed).
    """

    def __init__(
        self,
        machine: "Machine",
        scheduler: "TableauScheduler",
        window_ns: int = DEFAULT_WINDOW_NS,
        u_tolerance: float = 0.5,
        l_slack: float = 2.0,
        on_violation: Optional[Callable[[GuaranteeViolation], None]] = None,
    ) -> None:
        self.machine = machine
        self.scheduler = scheduler
        self.window_ns = window_ns
        self.u_tolerance = u_tolerance
        self.l_slack = l_slack
        self.on_violation = on_violation
        self.violations: List[GuaranteeViolation] = []
        self.samples = 0
        self._handle: Optional["RecurringHandle"] = None
        self._last_dispatch: Dict[str, int] = {}
        self._prev_runtime: Dict[str, int] = {}
        self._prev_runnable: Dict[str, bool] = {}
        # (U, L) bounds are derived from the table, which only changes
        # at a switch; cache per table identity.
        self._bounds_for: Optional[int] = None
        self._bounds: Dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
        self.machine.tracer.dispatch_listeners.append(self._on_dispatch)
        self._handle = self.machine.engine.every(self.window_ns, self._sample)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        listeners = self.machine.tracer.dispatch_listeners
        if self._on_dispatch in listeners:
            listeners.remove(self._on_dispatch)

    # ------------------------------------------------------------------
    # Feeds
    # ------------------------------------------------------------------

    def _on_dispatch(
        self, time: int, cpu: int, vcpu: Optional[str], level: int
    ) -> None:
        if vcpu is not None:
            self._last_dispatch[vcpu] = time

    def _table_bounds(self) -> Dict[str, tuple]:
        table = self.scheduler.table
        if self._bounds_for != id(table):
            index = table.service_index()
            self._bounds = {
                name: (
                    table.utilization_of(name),
                    table.max_blackout_ns(name, timeline=index.get(name)),
                )
                for name in table.home_cores
            }
            self._bounds_for = id(table)
        return self._bounds

    def _sample(self) -> None:
        self.samples += 1
        now = self.machine.engine.now
        window = self.window_ns
        bounds = self._table_bounds()
        quarantined = self.scheduler.quarantined
        for name, vcpu in self.machine.vcpus.items():
            prev_runtime = self._prev_runtime.get(name)
            was_runnable = self._prev_runnable.get(name, False)
            self._prev_runtime[name] = vcpu.runtime_ns
            self._prev_runnable[name] = vcpu.runnable
            if prev_runtime is None:
                continue
            if name in quarantined:
                # Intentionally starved; not a guarantee breach.
                continue
            bound = bounds.get(name)
            if bound is None:
                continue
            guaranteed_u, max_blackout = bound
            # U: a vCPU runnable across the whole window should have
            # received (at minimum) a sizable share of its guarantee.
            if guaranteed_u > 0.0 and was_runnable and vcpu.runnable:
                observed = (vcpu.runtime_ns - prev_runtime) / window
                # Worst-case legitimate service in this window: the
                # window may open on a maximal blackout, so only
                # U * (window - L) is contractually provable.
                provable = 1.0 - max_blackout / window
                if provable > 0.0 and observed < (
                    guaranteed_u * self.u_tolerance * provable
                ):
                    self._record(
                        GuaranteeViolation(
                            kind="utilization",
                            vcpu=name,
                            at_ns=now,
                            observed=observed,
                            bound=guaranteed_u,
                        )
                    )
            # L: a runnable vCPU whose last dispatch is further back
            # than the table's worst-case blackout (plus slack) is being
            # starved of its contracted service.
            if was_runnable and vcpu.runnable:
                last_seen = self._last_dispatch.get(name)
                if last_seen is not None:
                    gap = now - last_seen
                    allowed = max_blackout * self.l_slack
                    if gap > allowed:
                        self._record(
                            GuaranteeViolation(
                                kind="blackout",
                                vcpu=name,
                                at_ns=now,
                                observed=float(gap),
                                bound=float(allowed),
                            )
                        )

    def _record(self, violation: GuaranteeViolation) -> None:
        self.violations.append(violation)
        if self.on_violation is not None:
            self.on_violation(violation)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def violations_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.kind] = counts.get(violation.kind, 0) + 1
        return counts
