"""Per-core watchdogs: bounded-latency detection of dispatch stalls.

A healthy Tableau core is never silently idle: an idle core always has
its next table-boundary event armed, and every wakeup that matters comes
with a rescheduling IPI.  The runtime faults of :mod:`repro.faults`
break exactly those properties — a lost IPI leaves work stranded until
the next boundary, and a jittered timer can push the boundary event
itself arbitrarily far out.  The watchdog closes the loop: a periodic
per-core check (driven by :meth:`repro.sim.engine.SimEngine.every`)
that re-arms the scheduler when a core sits idle with runnable work and
no timely wake-up source.

The stall test is deliberately conservative so a fault-free machine is
never kicked (the perf-regression bench asserts the dispatch trace is
bit-identical with watchdogs running): an idle core only counts as
stalled when it has runnable candidates and *either* no armed event at
all *or* an event beyond one full table round — both impossible without
fault injection, since the idle dispatcher always arms the next slot
boundary, which is at most one round away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.schedulers.tableau import TableauScheduler
    from repro.sim.engine import RecurringHandle
    from repro.sim.machine import Machine

#: Default watchdog period: 1 ms, the same order as the L2 timeslice.
DEFAULT_WATCHDOG_PERIOD_NS = 1_000_000


@dataclass
class CoreIncident:
    """One watchdog observation worth reporting."""

    cpu: int
    kind: str  # "stall" | "degraded"
    at_ns: int
    detail: str


class CoreWatchdog:
    """Watches one core for dispatch stalls.

    Args:
        machine: The machine the core belongs to.
        scheduler: The Tableau dispatcher (for runnable counts and the
            current table round length).
        cpu: Core index under watch.
        period_ns: Check cadence in simulated time.
        stall_bound_ns: Idle cores with an armed event further out than
            this are considered stalled.  Defaults to the live table's
            round length — the latest moment a healthy idle core would
            naturally wake.
        on_incident: Callback receiving a :class:`CoreIncident` for
            every kick (the supervisor's feed).
    """

    def __init__(
        self,
        machine: "Machine",
        scheduler: "TableauScheduler",
        cpu: int,
        period_ns: int = DEFAULT_WATCHDOG_PERIOD_NS,
        stall_bound_ns: Optional[int] = None,
        on_incident: Optional[Callable[[CoreIncident], None]] = None,
    ) -> None:
        self.machine = machine
        self.scheduler = scheduler
        self.cpu = cpu
        self.period_ns = period_ns
        self.stall_bound_ns = stall_bound_ns
        self.on_incident = on_incident
        self.checks = 0
        self.kicks = 0
        self._handle: Optional["RecurringHandle"] = None

    def start(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
        self._handle = self.machine.engine.every(self.period_ns, self.check)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def active(self) -> bool:
        return self._handle is not None and self._handle.active

    def check(self) -> bool:
        """One watchdog pass; returns True when the core was kicked."""
        self.checks += 1
        machine = self.machine
        cpu = machine.cpus[self.cpu]
        if cpu.current is not None:
            return False
        if cpu.resched is not None and cpu.resched.active:
            # A reschedule is already on its way; nothing is stalled.
            return False
        if self.scheduler.runnable_on(self.cpu) == 0:
            return False
        now = machine.engine.now
        event = cpu.event
        if event is not None and event.active:
            bound = (
                self.stall_bound_ns
                if self.stall_bound_ns is not None
                else self.scheduler.table.length_ns
            )
            if event.time <= now + bound:
                # The core will wake within a table round on its own.
                return False
            detail = (
                f"idle with runnable work; next event {event.time - now} ns "
                f"out (> {bound} ns bound)"
            )
        else:
            detail = "idle with runnable work and no armed event"
        self.kicks += 1
        machine.request_resched(self.cpu)
        if self.on_incident is not None:
            self.on_incident(
                CoreIncident(cpu=self.cpu, kind="stall", at_ns=now, detail=detail)
            )
        return True
