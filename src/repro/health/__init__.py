"""Runtime health supervision for the Tableau stack.

The planner proves (U, L) guarantees at plan time; this package defends
them at run time.  Per-core watchdogs (:mod:`repro.health.watchdog`)
catch dispatch stalls with bounded latency, online guarantee monitors
(:mod:`repro.health.guarantees`) watch delivered service against the
installed table's contract, and the supervisor
(:mod:`repro.health.supervisor`) turns observations into actions:
quarantining misbehaving guests (with toolstack-driven reconfiguration)
and replanning degraded cores back to table-driven dispatch.  The chaos
harness (:mod:`repro.health.chaos`) wires the whole stack up under a
seeded :class:`~repro.faults.FaultPlan` — see EXPERIMENTS.md ("Chaos and
degraded mode") for recipes.
"""

from repro.health.chaos import ChaosResult, run_chaos
from repro.health.guarantees import (
    DEFAULT_WINDOW_NS,
    GuaranteeMonitor,
    GuaranteeViolation,
)
from repro.health.supervisor import (
    DEFAULT_STUCK_THRESHOLD,
    QUARANTINE_UTILIZATION,
    HealthSupervisor,
    QuarantineRecord,
    RecoveryAttempt,
)
from repro.health.watchdog import (
    DEFAULT_WATCHDOG_PERIOD_NS,
    CoreIncident,
    CoreWatchdog,
)

__all__ = [
    "ChaosResult",
    "CoreIncident",
    "CoreWatchdog",
    "DEFAULT_STUCK_THRESHOLD",
    "DEFAULT_WATCHDOG_PERIOD_NS",
    "DEFAULT_WINDOW_NS",
    "GuaranteeMonitor",
    "GuaranteeViolation",
    "HealthSupervisor",
    "QUARANTINE_UTILIZATION",
    "QuarantineRecord",
    "RecoveryAttempt",
    "run_chaos",
]
