"""Discrete-event hypervisor simulator substrate.

Provides the event engine, the multicore machine model with scheduler
overhead charging, simulated VMs/vCPUs, the workload protocol, the
tracing framework, and the calibrated cost model.
"""

from repro.sim.arraycore import ENGINES, ArrayMachine, ArrayTracer
from repro.sim.engine import EventHandle, SimEngine
from repro.sim.machine import Machine
from repro.sim.overheads import (
    CONTEXT_SWITCH_NS,
    IPI_WIRE_NS,
    CostModel,
    GlobalLock,
    make_cost_model,
)
from repro.sim.tracing import (
    ALL_OPS,
    OP_MIGRATE,
    OP_SCHEDULE,
    OP_WAKEUP,
    DispatchRecord,
    OpStats,
    Tracer,
)
from repro.sim.vm import VM, VCpu, VCpuState, Workload

__all__ = [
    "ALL_OPS",
    "ArrayMachine",
    "ArrayTracer",
    "CONTEXT_SWITCH_NS",
    "CostModel",
    "ENGINES",
    "DispatchRecord",
    "EventHandle",
    "GlobalLock",
    "IPI_WIRE_NS",
    "Machine",
    "OP_MIGRATE",
    "OP_SCHEDULE",
    "OP_WAKEUP",
    "OpStats",
    "SimEngine",
    "Tracer",
    "VCpu",
    "VCpuState",
    "VM",
    "Workload",
    "make_cost_model",
]
