"""Structure-of-arrays dispatch engine: batched table playback.

The object backend (:class:`~repro.sim.machine.Machine` +
``TableauScheduler.pick_next``) pays per-event Python overhead on every
dispatch: a chain of method frames (resched callback, ``pick_next``,
``post_schedule``, two ``record_op`` calls, ``_arm_event``), a
:class:`~repro.schedulers.base.Decision` allocation, and repeated
attribute traffic.  Tableau's tables make almost all of that work
statically predictable, so this module compiles the active system table
into flat per-core arrays and *plays them back*:

* each core's cyclic schedule is flattened into full-coverage segment
  columns — ``seg_ends`` (``array('q')`` of segment end offsets) plus a
  parallel owner column (vCPU registry handles, ``-1`` for idle) — so a
  dispatch lookup is a cursor advance over an integer array instead of a
  slice-table probe;
* a per-core cursor and cycle base batch-advance monotonically with the
  clock: within one table round the next boundary is one array read,
  and multi-round gaps fast-forward with one division;
* the three hot entry points (resched, core timer event, wakeup) are
  compiled — once per core, at program build — into argument-bound
  kernel functions: every constant the kernel touches (the engine, the
  heap, the shared scheduler dicts, the tracer's stat objects, cost
  scalars, enum members) is bound as a function default, so the hot
  loop runs on local-variable loads with no ``self`` traffic, no
  ``functools.partial`` indirection, and no per-event frames beyond the
  kernel itself.

Kernels are built exactly once; a staged table *switch* refills the
stable per-core containers (``seg_ends``/``seg_vcpu``/cursors) in place
and updates the program's rebindable attributes, so callbacks already
sitting in the event heap keep working — they re-read the mutable state
through containers whose identity never changes.

Behavioral equivalence is the hard constraint: the kernels replicate
the object path statement for statement (same event schedule times,
same ``seq`` consumption, same RNG draw order, same float accumulation
order into :class:`~repro.sim.tracing.OpStats`), so a same-seed run
produces a bit-identical trace fingerprint on either backend.  Whenever
a non-table code path is active the kernels fall back to the inherited
object implementation:

* clock skew or timer jitter faults -> the resched/timer kernels are
  compiled *as* the object path (the whole run is affected);
* stuck-guest faults -> burst completion delegated likewise;
* a staged table switch -> resched delegated per call until the wrap
  (the switch listener then recompiles the arrays);
* a degraded core (corrupt table) -> that core's rescheds delegated to
  the round-robin path while healthy cores keep playing the table;
* quarantined vCPUs are honored inline (shared dict reads).

Schedulers other than the plain ``TableauScheduler`` return no array
program at all, in which case :class:`ArrayMachine` behaves exactly
like :class:`~repro.sim.machine.Machine`.
"""

from __future__ import annotations

from array import array
from functools import partial
from heapq import heappush
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.hotpath import hotpath
from repro.sim.engine import EventHandle
from repro.sim.machine import Machine, _Cpu
from repro.sim.overheads import CONTEXT_SWITCH_NS, IPI_WIRE_NS
from repro.sim.tracing import (
    OP_MIGRATE,
    OP_SCHEDULE,
    OP_WAKEUP,
    DispatchRecord,
    Tracer,
)
from repro.sim.vm import VCpu, VCpuState

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.schedulers.tableau import TableauScheduler

#: Engine backend names accepted by the scenario/campaign/CLI seams.
ENGINES = ("object", "array")


class ArrayTracer(Tracer):
    """Tracer with a columnar (SoA) dispatch log.

    Dispatch records are stored as parallel columns — ``array('q')`` for
    time/cpu/level plus a list of vCPU names — and materialized into
    :class:`~repro.sim.tracing.DispatchRecord` objects only when
    :attr:`dispatches` is read.  The hot loop appends four scalars per
    decision instead of constructing an object; every observable
    (records, listeners, stats) is identical to :class:`Tracer`.
    """

    def __init__(
        self, keep_samples: bool = False, keep_dispatches: bool = False
    ) -> None:
        self.dispatch_times: array = array("q")
        self.dispatch_cpus: array = array("q")
        self.dispatch_levels: array = array("q")
        self.dispatch_vcpus: List[Optional[str]] = []
        self._dispatch_cache: Optional[List[DispatchRecord]] = None
        super().__init__(keep_samples=keep_samples, keep_dispatches=keep_dispatches)

    @property
    def dispatches(self) -> List[DispatchRecord]:  # type: ignore[override]
        cache = self._dispatch_cache
        if cache is None or len(cache) != len(self.dispatch_times):
            cache = [
                DispatchRecord(time, cpu, vcpu, level)
                for time, cpu, vcpu, level in zip(
                    self.dispatch_times,
                    self.dispatch_cpus,
                    self.dispatch_vcpus,
                    self.dispatch_levels,
                )
            ]
            self._dispatch_cache = cache
        return cache

    @dispatches.setter
    def dispatches(self, records: List[DispatchRecord]) -> None:
        # Tracer.__init__ assigns ``self.dispatches = []``; resetting the
        # columns keeps that contract without storing an object list.
        self.dispatch_times = array("q")
        self.dispatch_cpus = array("q")
        self.dispatch_levels = array("q")
        self.dispatch_vcpus = []
        self._dispatch_cache = None
        for record in records:
            self.dispatch_times.append(record.time)
            self.dispatch_cpus.append(record.cpu)
            self.dispatch_vcpus.append(record.vcpu)
            self.dispatch_levels.append(record.level)

    def record_dispatch(
        self, time: int, cpu: int, vcpu: Optional[str], level: int
    ) -> None:
        if self.keep_dispatches:
            self.dispatch_times.append(time)
            self.dispatch_cpus.append(cpu)
            self.dispatch_vcpus.append(vcpu)
            self.dispatch_levels.append(level)
        if self.dispatch_listeners:
            for listener in self.dispatch_listeners:
                listener(time, cpu, vcpu, level)


# ----------------------------------------------------------------------
# Kernel factories (cold: run once per program build)
# ----------------------------------------------------------------------
#
# Each factory returns one argument-bound function.  Everything the
# kernel needs is frozen as a default argument (a LOAD_FAST at run
# time); state that a table switch may *replace* (the L2 map, the home
# maps, the cycle length) is read through ``program``, and state a
# switch *refills* (the segment columns, the cursors) is reached through
# container objects whose identity never changes — so kernels captured
# by events already in the heap stay valid across recompiles.


def _compile_resched(program: "TableauArrayProgram", cpu: _Cpu) -> Callable[[], None]:
    """Build the fused dispatch-decision kernel for one core.

    Replicates ``Machine._do_resched`` + ``TableauScheduler.pick_next``
    + ``post_schedule`` + ``Machine._arm_event`` with identical
    observable effects (event times, seq consumption, trace records,
    shared-state mutation order).
    """
    machine = program.machine
    if program._slow_resched:
        # Clock skew / timer jitter bends every decision on this
        # machine: the object path *is* the kernel.
        return partial(machine._do_resched, cpu)
    tracer = program._tracer

    @hotpath
    def resched_kernel(
        program=program,
        cpu=cpu,
        index=cpu.index,
        sched=program.sched,
        machine=machine,
        do_resched=machine._do_resched,
        engine=program.engine,
        heap=program.engine._heap,
        last_pick=program._last_pick,
        quarantined=program._quarantined,
        degraded=program._degraded,
        scratch=program._scratch,
        seg_ends=program.seg_ends,
        seg_vcpu=program.seg_vcpu,
        seg_cursor=program.seg_cursor,
        seg_base=program.seg_base,
        l2_state_factory=program.l2_state_factory,
        pick_cost=program._pick_cost,
        migrate_cost=program._migrate_cost,
        l2_scan=program.l2_scan,
        l2_min=program.l2_min_budget,
        l2_epoch=program._l2_epoch,
        l2_slice=program._l2_slice,
        work_conserving=program._work_conserving,
        tracer=tracer,
        ssched=program._ssched,
        smig=program._smig,
        tracer_is_array=program._tracer_is_array,
        record_dispatch=program._record_dispatch,
        blocked=VCpuState.BLOCKED,
        running=VCpuState.RUNNING,
        runnable=VCpuState.RUNNABLE,
        event_handle=EventHandle,
        heap_push=heappush,
        context_switch_ns=CONTEXT_SWITCH_NS,
        ipi_wire_ns=IPI_WIRE_NS,
        op_schedule=OP_SCHEDULE,
        op_migrate=OP_MIGRATE,
    ):
        if sched._pending_table is not None or (degraded and index in degraded):
            do_resched(cpu)
            return
        now = engine.now
        handle = cpu.resched
        if handle is not None:
            if not handle._dead:
                handle._dead = True
                engine._live -= 1
            cpu.resched = None
        # -- inline Machine._sync_current ------------------------------
        prev = cpu.current
        if prev is not None:
            handle = cpu.event
            if handle is not None:
                if not handle._dead:
                    handle._dead = True
                    engine._live -= 1
                cpu.event = None
            consumed = now - cpu.run_start
            if consumed > 0:
                remaining = prev.remaining_burst
                if consumed > remaining:
                    consumed = remaining
                prev.remaining_burst = remaining - consumed
                prev.runtime_ns += consumed
                cpu.busy_ns += consumed
            cpu.run_start = now
        # -- inline pick_next: settle the previous L2 pick -------------
        l2 = program._l2
        last = last_pick.get(index)
        if last is not None and last[2] == 2:
            prev_vcpu = last[0]
            state = l2.get(index)
            if state is None:
                state = l2[index] = l2_state_factory()
            consumed = prev_vcpu.runtime_ns - last[1]
            if consumed > 0:
                budgets = state.budgets
                name = prev_vcpu.name
                remaining = budgets.get(name, 0) - consumed
                budgets[name] = remaining if remaining > 0 else 0
        # -- inline pick_next: table playback (batch advance) ----------
        cost = pick_cost
        chosen = None
        level = 1
        ends = seg_ends[index]
        if ends is None:
            # Core without a table: idle, re-pick only on external events.
            qend = None
        else:
            base = seg_base[index]
            offset = now - base
            length = program.length_ns
            if offset >= length:
                skip = offset // length
                base += skip * length
                offset -= skip * length
                seg_base[index] = base
                cursor = 0
            else:
                cursor = seg_cursor[index]
            while offset >= ends[cursor]:
                cursor += 1
            seg_cursor[index] = cursor
            boundary = base + ends[cursor]
            owner = seg_vcpu[index][cursor]
            qend = boundary
            if (
                owner is not None
                and owner.state is not blocked
                and (not quarantined or owner.name not in quarantined)
            ):
                owner_pcpu = owner.pcpu
                if owner_pcpu is not None and owner_pcpu != index:
                    # Scheduled elsewhere (split-allocation race):
                    # register for an IPI, fall through to the L2.
                    owner.sched_data["tableau.waiter"] = index
                else:
                    chosen = owner
                    last_pick[index] = (owner, owner.runtime_ns, 1)
            if chosen is None:
                # -- inline _l2_pick (split policy "none") -------------
                if work_conserving:
                    state = l2.get(index)
                    if state is not None:
                        members = state.members
                        budgets = state.budgets
                        bget = budgets.get
                        candidates = scratch
                        del candidates[:]
                        any_replenished = False
                        # Single pass: collect candidates and track the
                        # (budget, name)-max simultaneously; pre-replenish
                        # budgets are exactly what the two-pass object
                        # algorithm scans when no replenish happens.
                        best = None
                        best_budget = 0
                        for vcpu in members:
                            vcpu_pcpu = vcpu.pcpu
                            if (
                                vcpu.state is not blocked
                                and (vcpu_pcpu is None or vcpu_pcpu == index)
                                and (
                                    not quarantined
                                    or vcpu.name not in quarantined
                                )
                            ):
                                candidates.append(vcpu)
                                budget = bget(vcpu.name, 0)
                                if budget >= l2_min:
                                    any_replenished = True
                                if (
                                    best is None
                                    or budget > best_budget
                                    or (
                                        budget == best_budget
                                        and vcpu.name > best.name
                                    )
                                ):
                                    best = vcpu
                                    best_budget = budget
                        if best is not None:
                            if not any_replenished:
                                # Replenish: equal shares, so the best
                                # becomes the lexicographically greatest
                                # candidate (the object path's tie-break).
                                share = l2_epoch // len(candidates)
                                best = None
                                for vcpu in candidates:
                                    budgets[vcpu.name] = share
                                    if best is None or vcpu.name > best.name:
                                        best = vcpu
                                best_budget = share
                            if best_budget >= l2_min:
                                chosen = best
                                level = 2
                                cost = cost + l2_scan * len(members)
                                slice_left = l2_slice
                                if best_budget < slice_left:
                                    slice_left = best_budget
                                quantum = now + slice_left
                                qend = quantum if quantum < boundary else boundary
                                last_pick[index] = (best, best.runtime_ns, 2)
                if chosen is None:
                    last_pick[index] = (None, 0, 0)
                    qend = boundary
        # -- record the schedule op (inline OpStats.add) ---------------
        keep_samples = tracer.keep_samples
        stats = ssched
        stats.count += 1
        stats.total_ns += cost
        if cost > stats.max_ns:
            stats.max_ns = cost
        if keep_samples:
            tracer.samples[op_schedule].append((now, index, cost))
        # -- inline post_schedule --------------------------------------
        mcost = migrate_cost
        if prev is not None and prev is not chosen:
            waiter = prev.sched_data.pop("tableau.waiter", None)
            if waiter is not None:
                mcost = mcost + machine.costs.ipi()
                machine.send_resched_ipi(int(waiter), delay=ipi_wire_ns)
        stats = smig
        stats.count += 1
        stats.total_ns += mcost
        if mcost > stats.max_ns:
            stats.max_ns = mcost
        if keep_samples:
            tracer.samples[op_migrate].append((now, index, mcost))
        overhead = cost + mcost
        cpu.overhead_ns += int(overhead)
        # -- context switch bookkeeping --------------------------------
        switching = chosen is not prev
        if prev is not None and switching:
            prev.pcpu = None
            if prev.state is running:
                prev.state = runnable
            prev.workload.on_deschedule(now)
        cpu.quantum_end = qend
        if chosen is None:
            cpu.current = None
            # -- inline _arm_event (idle core) -------------------------
            handle = cpu.event
            if handle is not None:
                if not handle._dead:
                    handle._dead = True
                    engine._live -= 1
                cpu.event = None
            if qend is not None:
                when = qend if qend > now else now
                seq = engine._seq
                engine._seq = seq + 1
                handle = event_handle(when, seq, cpu.event_cb, engine)
                heap_push(heap, (when, seq, handle))
                engine._live += 1
                cpu.event = handle
            return
        dispatch_at = now + int(overhead)
        if switching:
            dispatch_at += context_switch_ns
            tracer.context_switches += 1
            if chosen.last_cpu != index:
                tracer.migrations += 1
            chosen.dispatch_count += 1
        cpu.current = chosen
        chosen.state = running
        chosen.pcpu = index
        chosen.last_cpu = index
        cpu.run_start = dispatch_at
        name = chosen.name
        if tracer_is_array:
            # Columnar append, re-reading the columns from the tracer so
            # a ``dispatches = []`` reset cannot leave stale references.
            if tracer.keep_dispatches:
                tracer.dispatch_times.append(now)
                tracer.dispatch_cpus.append(index)
                tracer.dispatch_vcpus.append(name)
                tracer.dispatch_levels.append(level)
            listeners = tracer.dispatch_listeners
            if listeners:
                for listener in listeners:
                    listener(now, index, name, level)
        else:
            record_dispatch(now, index, name, level)
        if switching:
            chosen.workload.on_dispatch(dispatch_at)
        # -- inline _arm_event (running core) --------------------------
        handle = cpu.event
        if handle is not None and not handle._dead:
            handle._dead = True
            engine._live -= 1
        when = cpu.run_start + chosen.remaining_burst
        if qend is not None:
            clamped = qend if qend > now else now
            if clamped < when:
                when = clamped
        seq = engine._seq
        engine._seq = seq + 1
        handle = event_handle(when, seq, cpu.event_cb, engine)
        heap_push(heap, (when, seq, handle))
        engine._live += 1
        cpu.event = handle

    return resched_kernel


def _compile_cpu_event(
    program: "TableauArrayProgram", cpu: _Cpu, resched_k: Callable[[], None]
) -> Callable[[], None]:
    """Build the fused core-timer kernel for one core.

    Replicates ``Machine._on_cpu_event`` + ``Machine._complete_burst``
    (sans the stuck-guest consult, which compiles to the object path
    when that fault site is armed).
    """
    machine = program.machine
    if program._slow_event:
        return partial(machine._on_cpu_event, cpu)

    @hotpath
    def cpu_event_kernel(
        cpu=cpu,
        engine=program.engine,
        heap=program.engine._heap,
        resched_k=resched_k,
        blocked=VCpuState.BLOCKED,
        event_handle=EventHandle,
        heap_push=heappush,
        sim_error=SimulationError,
    ):
        now = engine.now
        handle = cpu.event
        if handle is not None:
            if not handle._dead:
                handle._dead = True
                engine._live -= 1
            cpu.event = None
        vcpu = cpu.current
        if vcpu is None:
            # Idle core reached a scheduler-requested check point.
            resched_k()
            return
        remaining = vcpu.remaining_burst
        run_start = cpu.run_start
        if now < run_start + remaining:
            # Quantum expiry: preemption point.
            resched_k()
            return
        # -- inline _complete_burst ------------------------------------
        consumed = now - run_start
        if consumed > remaining:
            consumed = remaining
        vcpu.remaining_burst = remaining - consumed
        vcpu.runtime_ns += consumed
        cpu.busy_ns += consumed
        cpu.run_start = now
        vcpu.workload.on_burst_complete(now)
        remaining = vcpu.remaining_burst
        if remaining > 0:
            # More compute queued; keep running within the quantum.
            qend = cpu.quantum_end
            when = now + remaining
            if qend is not None:
                clamped = qend if qend > now else now
                if clamped < when:
                    when = clamped
            seq = engine._seq
            engine._seq = seq + 1
            handle = event_handle(when, seq, cpu.event_cb, engine)
            heap_push(heap, (when, seq, handle))
            engine._live += 1
            cpu.event = handle
        elif vcpu.state is blocked:
            # ``Scheduler.on_block`` is a no-op for the stock Tableau
            # dispatcher (the compile gate guarantees no subclass), so
            # the notification is elided here.
            vcpu.pcpu = None
            vcpu.workload.on_deschedule(now)
            cpu.current = None
            resched_k()
        else:
            raise sim_error(
                # fatal-error path, never taken by a conforming workload
                # repro: allow[hot-fstring]
                f"{vcpu.name}: workload neither queued a burst nor blocked"
            )

    return cpu_event_kernel


def _compile_wake(program: "TableauArrayProgram") -> Callable[[VCpu], None]:
    """Build the fused wakeup-delivery kernel (installed as ``machine.wake``).

    Replicates ``Machine.wake`` + ``TableauScheduler.on_wakeup`` +
    ``Machine._steal`` + ``Machine.request_resched``, using the segment
    cursors for the current-allocation probe.
    """
    tracer = program._tracer

    @hotpath
    def wake_kernel(
        vcpu,
        program=program,
        machine=program.machine,
        engine=program.engine,
        heap=program.engine._heap,
        cpus=program._cpus,
        quarantined=program._quarantined,
        seg_ends=program.seg_ends,
        seg_vcpu=program.seg_vcpu,
        seg_cursor=program.seg_cursor,
        seg_base=program.seg_base,
        wake_cost=program._wake_cost,
        work_conserving=program._work_conserving,
        ipi_faults=program._ipi_faults,
        tracer=tracer,
        swake=program._swake,
        blocked=VCpuState.BLOCKED,
        event_handle=EventHandle,
        heap_push=heappush,
        ipi_wire_ns=IPI_WIRE_NS,
        op_wakeup=OP_WAKEUP,
    ):
        now = engine.now
        if vcpu.state is not blocked:
            vcpu.workload.on_wake(now)
            return
        vcpu.workload.on_wake(now)
        if vcpu.state is blocked:
            # The workload chose to ignore the event (no burst queued).
            return
        # -- inline TableauScheduler.on_wakeup -------------------------
        cost = wake_cost
        name = vcpu.name
        processing = vcpu.last_cpu
        resched_cpu = -1
        ipi_delay = 0
        if not quarantined or name not in quarantined:
            homes = program._home_cores.get(name)
            if homes:
                length = program.length_ns
                for core in homes:
                    # Boundary scan: same cursor advance as the dispatch
                    # path (wake probes are monotonic in engine time too).
                    base = seg_base[core]
                    offset = now - base
                    if offset >= length:
                        skip = offset // length
                        base += skip * length
                        offset -= skip * length
                        seg_base[core] = base
                        cursor = 0
                    else:
                        cursor = seg_cursor[core]
                    ends = seg_ends[core]
                    while offset >= ends[cursor]:
                        cursor += 1
                    seg_cursor[core] = cursor
                    if seg_vcpu[core][cursor] is vcpu:
                        resched_cpu = core
                        ipi_delay = ipi_wire_ns
                        break
            if resched_cpu < 0 and work_conserving:
                # No current allocation: uncapped vCPUs may use an
                # idling home core.
                home = program._l2_home_by_name.get(name)
                if home is not None and cpus[home].current is None:
                    resched_cpu = home
                    ipi_delay = ipi_wire_ns
        # -- record the wakeup op (inline OpStats.add) -----------------
        stats = swake
        stats.count += 1
        stats.total_ns += cost
        if cost > stats.max_ns:
            stats.max_ns = cost
        if tracer.keep_samples:
            tracer.samples[op_wakeup].append((now, processing, cost))
        # -- inline Machine._steal on the processing core --------------
        charge = int(cost)
        proc = cpus[processing]
        proc.overhead_ns += charge
        if charge > 0 and proc.current is not None:
            handle = proc.event
            if handle is not None:
                when = handle.time + charge
                if not handle._dead:
                    handle._dead = True
                    engine._live -= 1
                proc.run_start += charge
                pqend = proc.quantum_end
                if pqend is not None and handle.time == pqend:
                    proc.quantum_end = pqend + charge
                seq = engine._seq
                engine._seq = seq + 1
                handle = event_handle(when, seq, proc.event_cb, engine)
                heap_push(heap, (when, seq, handle))
                engine._live += 1
                proc.event = handle
        if resched_cpu < 0:
            return
        delay = charge
        if resched_cpu != processing:
            if ipi_faults:
                # Cross-core notification over the faultable IPI wire.
                machine.send_resched_ipi(resched_cpu, delay=delay + ipi_delay)
                return
            delay += ipi_delay
        # -- inline Machine.request_resched (coalescing) ---------------
        target = cpus[resched_cpu]
        when = now + delay
        handle = target.resched
        if handle is not None and not handle._dead:
            if handle.time <= when:
                return
            handle._dead = True
            engine._live -= 1
        seq = engine._seq
        engine._seq = seq + 1
        handle = event_handle(when, seq, target.resched_cb, engine)
        heap_push(heap, (when, seq, handle))
        engine._live += 1
        target.resched = handle

    return wake_kernel


class TableauArrayProgram:
    """The compiled playback program for one (machine, scheduler) pair.

    Holds the flattened table columns, the per-core cursors, and direct
    references to the scheduler's *shared* mutable state (budgets, last
    picks, quarantine/degrade maps).  Sharing — never copying — that
    state is what makes mixed fused/delegated execution coherent: a
    delegated degraded-core pick and a fused table pick read and write
    the same dictionaries in the same order as a pure object run.

    Built by ``TableauScheduler.array_program``; the scheduler passes
    its second-level constants and the ``_L2State`` factory in so this
    module never imports the scheduler layer (``sim`` must stay below
    ``schedulers`` in the layering).

    Attributes:
        resched_kernels: Per-core dispatch-decision kernels (the
            machine's ``resched_cb`` targets).
        event_kernels: Per-core timer kernels (``event_cb`` targets).
        wake_kernel: The machine-wide wakeup kernel (``machine.wake``).
        compiles: Number of table compilations (1 + one per switch).
    """

    __slots__ = (
        "machine",
        "sched",
        "engine",
        "l2_scan",
        "l2_min_budget",
        "l2_state_factory",
        "_last_pick",
        "_quarantined",
        "_degraded",
        "_l2",
        "_pick_cost",
        "_wake_cost",
        "_migrate_cost",
        "_work_conserving",
        "_l2_slice",
        "_l2_epoch",
        "_cpus",
        "_tracer",
        "_tracer_is_array",
        "_ssched",
        "_smig",
        "_swake",
        "_record_dispatch",
        "_slow_resched",
        "_slow_event",
        "_ipi_faults",
        "_scratch",
        "vcpu_registry",
        "seg_ends",
        "seg_vcpu",
        "seg_cursor",
        "seg_base",
        "length_ns",
        "_home_cores",
        "_l2_home_by_name",
        "compiles",
        "resched_kernels",
        "event_kernels",
        "wake_kernel",
    )

    def __init__(
        self,
        machine: Machine,
        sched: "TableauScheduler",
        l2_scan: float,
        l2_min_budget: int,
        l2_state_factory: Callable[[], object],
    ) -> None:
        self.machine = machine
        self.sched = sched
        self.engine = machine.engine
        self.l2_scan = l2_scan
        self.l2_min_budget = l2_min_budget
        self.l2_state_factory = l2_state_factory
        # Shared scheduler state: these dicts are mutated in place by
        # both backends and never replaced (``_l2`` is replaced on table
        # switches; re-cached by the switch listener below).
        self._last_pick = sched._last_pick
        self._quarantined = sched._quarantined
        self._degraded = sched.degraded_cores
        self._l2 = sched._l2
        # Fixed scheduler configuration (entry costs are finalized in
        # ``attach``, which ran during machine construction).
        self._pick_cost = sched._pick_cost
        self._wake_cost = sched._wake_cost
        self._migrate_cost = sched._migrate_cost
        self._work_conserving = sched.work_conserving
        self._l2_slice = sched.l2_slice_ns
        self._l2_epoch = sched.l2_epoch_ns
        # Cached machine surfaces (fixed for the machine's lifetime).
        self._cpus = machine.cpus
        tracer = machine.tracer
        self._tracer = tracer
        self._tracer_is_array = isinstance(tracer, ArrayTracer)
        self._ssched = tracer.ops[OP_SCHEDULE]
        self._smig = tracer.ops[OP_MIGRATE]
        self._swake = tracer.ops[OP_WAKEUP]
        self._record_dispatch = tracer.record_dispatch
        # Whole-run fallback gates (fault wiring is fixed at machine
        # construction): when set, the matching kernels are compiled as
        # the object path.
        self._slow_resched = machine._any_skew or machine._timer_faults
        self._slow_event = machine._stuck_faults or machine._timer_faults
        self._ipi_faults = machine._ipi_faults
        # Candidate scratch for the L2 scan (reused, never reallocated;
        # safe because the scan completes before any workload hook runs).
        self._scratch: List[VCpu] = []
        #: vCPU registry: table vcpu-id -> registered VCpu (None when the
        #: table names a vCPU this machine never registered).
        self.vcpu_registry: List[Optional[VCpu]] = []
        # Stable containers: the kernels capture these list objects, so
        # recompiles must refill them in place, never replace them.
        num_cores = machine.topology.num_cores
        self.seg_ends: List[Optional[array]] = [None] * num_cores
        self.seg_vcpu: List[Optional[List[Optional[VCpu]]]] = [None] * num_cores
        self.seg_cursor: List[int] = [0] * num_cores
        self.seg_base: List[int] = [0] * num_cores
        self.length_ns = 0
        self._home_cores: Dict[str, List[int]] = {}
        self._l2_home_by_name: Dict[str, Optional[int]] = {}
        self.compiles = 0
        self._compile_table()
        # Kernels are built once; table switches refill the containers.
        self.resched_kernels: List[Callable[[], None]] = [
            _compile_resched(self, cpu) for cpu in machine.cpus
        ]
        self.event_kernels: List[Callable[[], None]] = [
            _compile_cpu_event(self, cpu, self.resched_kernels[cpu.index])
            for cpu in machine.cpus
        ]
        self.wake_kernel: Callable[[VCpu], None] = _compile_wake(self)
        sched.add_switch_listener(self._on_table_switch)

    # ------------------------------------------------------------------
    # Compilation (assembly time; not a hot path)
    # ------------------------------------------------------------------

    def _compile_table(self) -> None:
        """Flatten the active table into the per-core segment columns."""
        sched = self.sched
        table = sched.table
        vcpus = sched._vcpus
        num_cores = self.machine.topology.num_cores
        self.length_ns = table.length_ns
        columns = table.as_arrays()
        names = table.vcpu_names
        registry: List[Optional[VCpu]] = [vcpus.get(name) for name in names]
        self.vcpu_registry = registry
        seg_ends = self.seg_ends
        seg_vcpu = self.seg_vcpu
        seg_cursor = self.seg_cursor
        seg_base = self.seg_base
        for i in range(num_cores):
            seg_ends[i] = None
            seg_vcpu[i] = None
            seg_cursor[i] = 0
            seg_base[i] = 0
        for cpu_index, (_starts, ends, handles) in columns.items():
            seg_ends[cpu_index] = ends
            seg_vcpu[cpu_index] = [
                registry[handle] if handle >= 0 else None for handle in handles
            ]
        self._home_cores = table.home_cores
        self._l2 = sched._l2
        self._l2_home_by_name = {
            name: sched._l2_home(vcpu) for name, vcpu in vcpus.items()
        }
        self.compiles += 1

    def _on_table_switch(self, old, new, now: int) -> None:
        # A successful switch replaced ``sched.table`` (and rebuilt the
        # L2 membership); recompile and restart the cursors — the next
        # lookup fast-forwards to ``now`` in one division.  The kernels
        # themselves are untouched: they reach this state through the
        # program and the stable containers.
        self._compile_table()

    # ------------------------------------------------------------------
    # Method façade (cold; tests and interactive use)
    # ------------------------------------------------------------------

    def resched(self, cpu: _Cpu) -> None:
        """Run the dispatch-decision kernel for ``cpu``."""
        self.resched_kernels[cpu.index]()

    def cpu_event(self, cpu: _Cpu) -> None:
        """Run the core-timer kernel for ``cpu``."""
        self.event_kernels[cpu.index]()

    def wake(self, vcpu: VCpu) -> None:
        """Run the wakeup kernel for ``vcpu``."""
        self.wake_kernel(vcpu)


class ArrayMachine(Machine):
    """A :class:`Machine` with the array dispatch backend installed.

    Construction is identical to :class:`Machine`.  At the first
    :meth:`run` the scheduler is asked for a compiled array program
    (``scheduler.array_program(self)``); when one is available the
    per-core dispatch callbacks and the wake entry point are rebound to
    its compiled kernels.  Schedulers without a program — and every
    condition a program does not cover — use the inherited object
    paths, so behavior is bit-identical to the object backend in all
    cases.
    """

    engine_name = "array"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.program: Optional[TableauArrayProgram] = None

    def run(self, duration_ns: int) -> None:
        if not self._started and self.program is None:
            program = self.scheduler.array_program(self)
            if program is not None:
                self.program = program
                for cpu in self.cpus:
                    cpu.resched_cb = program.resched_kernels[cpu.index]
                    cpu.event_cb = program.event_kernels[cpu.index]
                # Instance attribute shadows the class method: every
                # wake (workloads, probes, external clients) goes
                # through the compiled kernel.
                self.wake = program.wake_kernel
        super().run(duration_ns)
