"""The simulated multicore machine: dispatch loop, overhead charging.

The machine owns the event engine, the physical cores, the vCPUs, and
one scheduler.  Its job is purely mechanical — execute compute bursts,
deliver wakeups, charge modelled overheads, emit trace records — while
every *policy* decision is delegated to the scheduler.  This mirrors the
paper's separation between Xen's scheduling framework and the pluggable
schedulers being compared.

Overhead charging: schedule/migrate costs delay the dispatch of the next
vCPU; wakeup costs *steal* time from whatever is running on the core
that processes the interrupt (its burst completion is pushed back).
Cycles spent in the scheduler are thus unavailable to guests, which is
exactly the throughput-tax mechanism of Sec. 2.2.

Runtime fault injection: an optional :class:`repro.faults.FaultPlan` is
consulted at the machinery the dispatcher trusts implicitly — cross-core
rescheduling IPIs (lost or delayed), each core's clock (static skew
offsets what the scheduler believes "now" is), the per-core dispatch
timer (jitter makes it fire late), and guest cooperation (a "stuck"
vCPU keeps computing past the point where its workload blocked).  With
no plan installed the dispatch loop takes no extra branches that affect
behaviour, so fault-free traces stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, SimulationError
from repro.hotpath import hotpath
from repro.sim.engine import EventHandle, SimEngine
from repro.sim.overheads import (
    CONTEXT_SWITCH_NS,
    CostModel,
    make_cost_model,
)
from repro.sim.tracing import OP_MIGRATE, OP_SCHEDULE, OP_WAKEUP, Tracer
from repro.sim.vm import VCpu, VCpuState
from repro.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.faults.plan import FaultPlan
    from repro.schedulers.base import Scheduler



@dataclass(slots=True)
class _Cpu:
    """Per-core dispatch state (slotted: read on every event)."""

    index: int
    current: Optional[VCpu] = None
    event: Optional[EventHandle] = None  # pending burst/quantum event
    quantum_end: Optional[int] = None
    run_start: int = 0  # when `current` last started making progress
    resched: Optional[EventHandle] = None
    busy_ns: int = 0
    # Integer ns like every other clock quantity: scheduler cost models
    # return floats, but charges land on the timeline truncated to whole
    # ns (the same truncation the dispatch/steal delays always used), so
    # accumulation is lossless and array('q')-compatible.
    overhead_ns: int = 0
    # Reusable event callbacks (bound once at machine assembly) so the
    # dispatch loop never allocates a closure per scheduled event.
    resched_cb: Optional[Callable[[], None]] = None
    event_cb: Optional[Callable[[], None]] = None


class Machine:
    """A multicore machine driven by one VM scheduler.

    Args:
        topology: Physical layout (cores, sockets).
        scheduler: The policy under test.
        seed: RNG seed (forwarded to the event engine for workloads).
        tracer: Optional pre-configured tracer (e.g., with dispatch
            logging enabled).
        faults: Optional runtime fault plan consulted at the IPI,
            clock, timer, and guest-cooperation decision points.
    """

    #: Backend selector name (``repro.sim.arraycore.ArrayMachine``
    #: overrides this with ``"array"``).
    engine_name = "object"

    def __init__(
        self,
        topology: Topology,
        scheduler: "Scheduler",
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        cost_model: Optional[CostModel] = None,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        self.topology = topology
        self.engine = SimEngine(seed=seed)
        self.scheduler = scheduler
        self.tracer = tracer if tracer is not None else Tracer()
        self.costs = cost_model if cost_model is not None else make_cost_model(topology)
        self.cpus: List[_Cpu] = [_Cpu(index=i) for i in range(topology.num_cores)]
        for cpu in self.cpus:
            cpu.resched_cb = partial(self._do_resched, cpu)
            cpu.event_cb = partial(self._on_cpu_event, cpu)
        self.vcpus: Dict[str, VCpu] = {}
        self._started = False
        # Runtime fault wiring: per-site booleans gate the hot paths so
        # a fault-free machine pays one attribute load, never a consult.
        self.faults = faults
        self.lost_ipis = 0
        self.delayed_ipis = 0
        self.jittered_timers = 0
        self.stuck_overruns = 0
        #: Per-guest overrun counts — the softlockup-style signal the
        #: health supervisor reads to spot misbehaving vCPUs.
        self.stuck_overruns_by_vcpu: Dict[str, int] = {}
        if faults is not None:
            from repro.faults.plan import (
                SITE_IPI_DELAY,
                SITE_IPI_LOST,
                SITE_TIMER_JITTER,
                SITE_VCPU_STUCK,
            )

            self._skews = [
                faults.clock_skew_ns(i) for i in range(topology.num_cores)
            ]
            self._any_skew = any(self._skews)
            self._ipi_faults = faults.has_site(SITE_IPI_LOST) or faults.has_site(
                SITE_IPI_DELAY
            )
            self._timer_faults = faults.has_site(SITE_TIMER_JITTER)
            self._stuck_faults = faults.has_site(SITE_VCPU_STUCK)
        else:
            self._skews = []
            self._any_skew = False
            self._ipi_faults = False
            self._timer_faults = False
            self._stuck_faults = False
        scheduler.attach(self)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def add_vcpu(self, vcpu: VCpu) -> VCpu:
        if self._started:
            raise SimulationError("cannot add vCPUs after the simulation started")
        if vcpu.name in self.vcpus:
            raise ConfigurationError(f"duplicate vCPU {vcpu.name}")
        self.vcpus[vcpu.name] = vcpu
        vcpu.machine = self
        vcpu.workload.bind(vcpu, self)
        self.scheduler.add_vcpu(vcpu)
        return vcpu

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, duration_ns: int) -> None:
        """Run (or continue) the simulation for ``duration_ns``."""
        if not self._started:
            self._started = True
            for vcpu in self.vcpus.values():
                vcpu.workload.start(0)
                if vcpu.runnable:
                    # Announce initially-runnable vCPUs so queue-based
                    # schedulers learn about them (free of charge: boot
                    # is not part of any measured scenario).
                    self.scheduler.on_wakeup(vcpu, 0)
            for cpu in self.cpus:
                self.request_resched(cpu.index)
        self.engine.run_until(self.engine.now + duration_ns)
        for cpu in self.cpus:
            self._sync_current(cpu, self.engine.now)
            self._arm_event(cpu, self.engine.now)

    @property
    def now(self) -> int:
        return self.engine.now

    # ------------------------------------------------------------------
    # Wakeups (called by workloads / external clients)
    # ------------------------------------------------------------------

    def wake(self, vcpu: VCpu) -> None:
        """Deliver a (virtual) interrupt to a blocked vCPU."""
        now = self.engine.now
        if vcpu.state is not VCpuState.BLOCKED:
            vcpu.workload.on_wake(now)
            return
        vcpu.workload.on_wake(now)
        if vcpu.state is VCpuState.BLOCKED:
            # The workload chose to ignore the event (no burst queued).
            return
        action = self.scheduler.on_wakeup(vcpu, now)
        self.tracer.record_op(OP_WAKEUP, now, action.cpu, action.cost_ns)
        self._steal(action.cpu, action.cost_ns)
        if action.resched_cpu is not None:
            delay = int(action.cost_ns)
            if action.resched_cpu != action.cpu:
                # Cross-core notification goes over the IPI wire, where
                # the fault plan may drop or delay it.
                self.send_resched_ipi(
                    action.resched_cpu, delay=delay + action.ipi_delay_ns
                )
            else:
                self.request_resched(action.resched_cpu, delay=delay)

    # ------------------------------------------------------------------
    # Rescheduling machinery
    # ------------------------------------------------------------------

    def request_resched(self, cpu_index: int, delay: int = 0) -> None:
        """Ask ``cpu_index`` to re-run its scheduler (coalescing repeats)."""
        cpu = self.cpus[cpu_index]
        when = self.engine.now + delay
        if cpu.resched is not None and cpu.resched.active and cpu.resched.time <= when:
            return
        if cpu.resched is not None:
            cpu.resched.cancel()
        cpu.resched = self.engine.at(when, cpu.resched_cb)

    def send_resched_ipi(self, cpu_index: int, delay: int = 0) -> None:
        """Deliver a cross-core rescheduling IPI (the faultable wire).

        Identical to :meth:`request_resched` on a healthy machine; with
        a fault plan installed the IPI may be silently dropped (the
        target core never learns it has work) or delivered late.
        """
        if self._ipi_faults:
            from repro.faults.plan import SITE_IPI_DELAY, SITE_IPI_LOST

            key = f"cpu{cpu_index}"
            if self.faults.fires(SITE_IPI_LOST, key=key) is not None:
                self.lost_ipis += 1
                return
            spec = self.faults.fires(SITE_IPI_DELAY, key=key)
            if spec is not None:
                self.delayed_ipis += 1
                delay += spec.delay_ns
        self.request_resched(cpu_index, delay=delay)

    @hotpath
    def _do_resched(self, cpu: _Cpu) -> None:
        now = self.engine.now
        if cpu.resched is not None:
            cpu.resched.cancel()
            cpu.resched = None
        self._sync_current(cpu, now)
        prev = cpu.current
        scheduler = self.scheduler
        tracer = self.tracer

        if self._any_skew:
            # The core consults its own (skewed) clock: table lookups
            # land in the wrong slot near boundaries, and the returned
            # quantum end is converted back below so the timer fires at
            # the instant the skewed core *believes* is correct.
            skew = self._skews[cpu.index]
            local_now = now + skew if now + skew > 0 else 0
            decision = scheduler.pick_next(cpu.index, local_now)
            if decision.quantum_end is not None:
                decision.quantum_end -= local_now - now
        else:
            decision = scheduler.pick_next(cpu.index, now)
        chosen = decision.vcpu
        tracer.record_op(OP_SCHEDULE, now, cpu.index, decision.cost_ns)
        migrate_cost = scheduler.post_schedule(cpu.index, prev, chosen, now)
        tracer.record_op(OP_MIGRATE, now, cpu.index, migrate_cost)
        overhead = decision.cost_ns + migrate_cost
        cpu.overhead_ns += int(overhead)

        if chosen is not None and chosen.state is VCpuState.BLOCKED:
            raise SimulationError(
                # fatal-error path, never taken on a healthy dispatch
                # repro: allow[hot-fstring]
                f"{scheduler.name} picked blocked vCPU {chosen.name}"
            )
        switching = chosen is not prev

        if prev is not None and switching:
            prev.pcpu = None
            if prev.state is VCpuState.RUNNING:
                prev.state = VCpuState.RUNNABLE
            prev.workload.on_deschedule(now)

        cpu.quantum_end = decision.quantum_end
        if chosen is None:
            cpu.current = None
            self._arm_event(cpu, now)
            return

        dispatch_at = now + int(overhead)
        if switching:
            dispatch_at += CONTEXT_SWITCH_NS
            migrated = chosen.last_cpu != cpu.index
            tracer.record_context_switch(migrated)
            chosen.dispatch_count += 1
        cpu.current = chosen
        chosen.state = VCpuState.RUNNING
        chosen.pcpu = cpu.index
        chosen.last_cpu = cpu.index
        cpu.run_start = dispatch_at
        tracer.record_dispatch(now, cpu.index, chosen.name, decision.level)
        if switching:
            chosen.workload.on_dispatch(dispatch_at)
        self._arm_event(cpu, now)

    @hotpath
    def _arm_event(self, cpu: _Cpu, now: int) -> None:
        """(Re)program the core's next dispatch event."""
        if cpu.event is not None:
            cpu.event.cancel()
            cpu.event = None
        quantum_end = cpu.quantum_end
        if cpu.current is not None:
            when = cpu.run_start + cpu.current.remaining_burst
            if quantum_end is not None:
                clamped = quantum_end if quantum_end > now else now
                if clamped < when:
                    when = clamped
        elif quantum_end is not None:
            when = quantum_end if quantum_end > now else now
        else:
            return
        if self._timer_faults:
            from repro.faults.plan import SITE_TIMER_JITTER

            # only reached when timer faults are armed; fault runs are
            # not throughput-measured
            # repro: allow[hot-fstring]
            spec = self.faults.fires(SITE_TIMER_JITTER, key=f"cpu{cpu.index}")
            if spec is not None:
                self.jittered_timers += 1
                when += spec.delay_ns
        cpu.event = self.engine.at(when, cpu.event_cb)

    def _on_cpu_event(self, cpu: _Cpu) -> None:
        now = self.engine.now
        if cpu.event is not None:
            cpu.event.cancel()
            cpu.event = None
        vcpu = cpu.current
        if vcpu is None:
            # Idle core reached a scheduler-requested check point.
            self._do_resched(cpu)
            return
        burst_end = cpu.run_start + vcpu.remaining_burst
        if now >= burst_end:
            self._complete_burst(cpu, vcpu, now)
        else:
            # Quantum expiry: preemption point.
            self._do_resched(cpu)

    def _complete_burst(self, cpu: _Cpu, vcpu: VCpu, now: int) -> None:
        consumed = min(now - cpu.run_start, vcpu.remaining_burst)
        vcpu.consume(consumed)
        cpu.busy_ns += consumed
        cpu.run_start = now
        vcpu.workload.on_burst_complete(now)
        if self._stuck_faults and vcpu.state is VCpuState.BLOCKED:
            from repro.faults.plan import SITE_VCPU_STUCK

            spec = self.faults.fires(SITE_VCPU_STUCK, key=vcpu.name)
            if spec is not None:
                # The guest spins past its voluntary block point: it
                # keeps the core (or stays runnable) and overruns its
                # (U, L) contract by the spec's extra burst.
                self.stuck_overruns += 1
                per_vcpu = self.stuck_overruns_by_vcpu
                per_vcpu[vcpu.name] = per_vcpu.get(vcpu.name, 0) + 1
                vcpu.begin_burst(spec.extra_burst_ns or 1_000_000)
        if vcpu.remaining_burst > 0:
            # The workload queued more compute; keep running within quantum.
            self._arm_event(cpu, now)
        elif vcpu.state is VCpuState.BLOCKED:
            vcpu.pcpu = None
            self.scheduler.on_block(vcpu, now)
            vcpu.workload.on_deschedule(now)
            cpu.current = None
            self._do_resched(cpu)
        else:
            raise SimulationError(
                f"{vcpu.name}: workload neither queued a burst nor blocked"
            )

    def _sync_current(self, cpu: _Cpu, now: int) -> None:
        """Account partial progress of the running vCPU up to ``now``."""
        vcpu = cpu.current
        if vcpu is None:
            return
        if cpu.event is not None:
            cpu.event.cancel()
            cpu.event = None
        consumed = max(0, now - cpu.run_start)
        consumed = min(consumed, vcpu.remaining_burst)
        vcpu.consume(consumed)
        cpu.busy_ns += consumed
        cpu.run_start = now

    def _steal(self, cpu_index: int, cost_ns: float) -> None:
        """Charge interrupt-processing time against a core.

        If a vCPU is running there, its progress window shifts by the
        cost: the pending burst/quantum event is pushed back and the
        progress origin moves forward, so the guest literally loses the
        cycles the hypervisor spent.
        """
        cpu = self.cpus[cpu_index]
        charge = int(cost_ns)
        cpu.overhead_ns += charge
        if charge <= 0 or cpu.current is None or cpu.event is None:
            return
        when = cpu.event.time + charge
        cpu.event.cancel()
        cpu.run_start += charge
        if cpu.quantum_end is not None and cpu.event.time == cpu.quantum_end:
            cpu.quantum_end += charge
        cpu.event = self.engine.at(when, cpu.event_cb)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def utilization_of(self, vcpu_name: str, window_ns: Optional[int] = None) -> float:
        window = window_ns if window_ns is not None else max(1, self.engine.now)
        return self.vcpus[vcpu_name].runtime_ns / window

    def total_overhead_ns(self) -> int:
        return sum(c.overhead_ns for c in self.cpus)

    def idle_fraction(self) -> float:
        if self.engine.now == 0:
            return 1.0
        busy = sum(c.busy_ns for c in self.cpus)
        return 1.0 - busy / (self.engine.now * len(self.cpus))
