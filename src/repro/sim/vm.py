"""Simulated VMs, vCPUs, and the workload protocol.

A vCPU is the schedulable entity; its behaviour is driven by a
:class:`Workload` that alternates *compute bursts* with *blocking*.
The machine executes bursts while the vCPU is dispatched; when a burst
finishes, the workload decides what happens next (another burst, or
blocking until an I/O completion / external event wakes the vCPU).

Workloads see a deliberately narrow surface — ``begin_burst``, ``block``,
timers, and ``wake`` — which is exactly the set of interactions a guest
has with the VM scheduler: consuming CPU, sleeping, and receiving
(virtual) interrupts.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Machine


class VCpuState(enum.Enum):
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"


class Workload:
    """Base class for guest behaviour models.

    Subclasses override :meth:`start` (must either start a burst or
    block) and :meth:`on_burst_complete` (must do the same, so the vCPU
    always has a defined next step).  The dispatch hooks let probes such
    as the intrinsic-latency measurement observe scheduling decisions
    without perturbing them.
    """

    def __init__(self) -> None:
        self.vcpu: Optional["VCpu"] = None
        self.machine: Optional["Machine"] = None

    def bind(self, vcpu: "VCpu", machine: "Machine") -> None:
        self.vcpu = vcpu
        self.machine = machine

    # -- lifecycle ------------------------------------------------------
    def start(self, now: int) -> None:
        """Called once at simulation start; default: block forever."""
        self.vcpu.set_blocked()

    def on_burst_complete(self, now: int) -> None:
        """Called when the current compute burst has been fully executed."""
        raise NotImplementedError

    # -- observation hooks ----------------------------------------------
    def on_dispatch(self, now: int) -> None:
        """The vCPU just started running on a pCPU."""

    def on_deschedule(self, now: int) -> None:
        """The vCPU just stopped running (preempted or blocked)."""

    def on_wake(self, now: int) -> None:
        """The vCPU was woken while blocked (before it is scheduled)."""


class VCpu:
    """One virtual CPU.

    Attributes:
        name: Globally unique identifier (matches the planner's specs).
        vm: Owning VM name.
        workload: The behaviour model driving this vCPU.
        capped: If True the vCPU may never exceed its reservation
            (scheduler-interpreted; e.g., excluded from Tableau's
            second-level scheduling and from Credit's spare cycles).
        weight: Proportional-share weight (Credit/Credit2).
        reservation: Optional (budget, period) attached by the harness
            so RTDS/Tableau can be configured identically (Sec. 7.2).

    The dispatch loop reads these fields on every decision, so the
    layout is slotted; scheduler-private extensions go in
    :attr:`sched_data` rather than ad-hoc attributes.
    """

    __slots__ = (
        "name",
        "vm",
        "workload",
        "capped",
        "weight",
        "state",
        "pcpu",
        "last_cpu",
        "remaining_burst",
        "runtime_ns",
        "dispatch_count",
        "wake_pending",
        "sched_data",
        "machine",
    )

    def __init__(
        self,
        name: str,
        workload: Workload,
        vm: Optional[str] = None,
        capped: bool = False,
        weight: int = 256,
    ) -> None:
        if not name:
            raise ConfigurationError("vCPU name must be non-empty")
        self.name = name
        self.vm = vm if vm is not None else name.split(".")[0]
        self.workload = workload
        self.capped = capped
        self.weight = weight
        self.state = VCpuState.BLOCKED
        self.pcpu: Optional[int] = None  # core currently running us
        self.last_cpu: int = 0
        self.remaining_burst: int = 0
        self.runtime_ns: int = 0  # total CPU time actually consumed
        self.dispatch_count: int = 0
        self.wake_pending: bool = False
        self.sched_data: Dict[str, object] = {}  # scheduler-private state
        self.machine: Optional["Machine"] = None

    # -- API used by workloads -----------------------------------------

    def begin_burst(self, duration_ns: int) -> None:
        """Queue ``duration_ns`` of compute as the next thing this vCPU does."""
        if duration_ns <= 0:
            raise SimulationError(f"{self.name}: burst must be positive")
        self.remaining_burst = duration_ns
        if self.state is VCpuState.BLOCKED:
            self.state = VCpuState.RUNNABLE

    def set_blocked(self) -> None:
        self.remaining_burst = 0
        self.state = VCpuState.BLOCKED

    # -- bookkeeping used by the machine ---------------------------------

    @property
    def runnable(self) -> bool:
        return self.state is not VCpuState.BLOCKED

    def consume(self, ns: int) -> None:
        if ns < 0 or ns > self.remaining_burst:
            raise SimulationError(
                f"{self.name}: consuming {ns} of {self.remaining_burst} ns burst"
            )
        self.remaining_burst -= ns
        self.runtime_ns += ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VCpu {self.name} {self.state.value} burst={self.remaining_burst}>"


class VM:
    """A simulated VM: a named group of vCPUs (most tests use one)."""

    def __init__(self, name: str, vcpus: Optional[list] = None) -> None:
        self.name = name
        self.vcpus = vcpus if vcpus is not None else []

    def add(self, vcpu: VCpu) -> VCpu:
        self.vcpus.append(vcpu)
        return vcpu
