"""Tracepoint framework (the xentrace stand-in).

The paper collects overhead samples "using Xen's built-in tracing
framework by adding tracepoints around key operations within the
scheduler" (Sec. 7.2).  This module provides the equivalent: the machine
emits a trace record for every schedule / wakeup / migrate operation
with its modelled duration, and aggregate statistics are kept cheaply so
60-simulated-second runs do not accumulate gigabytes of samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

#: Operation labels, matching the rows of Tables 1 and 2 in the paper.
OP_SCHEDULE = "schedule"
OP_WAKEUP = "wakeup"
OP_MIGRATE = "migrate"
ALL_OPS = (OP_SCHEDULE, OP_WAKEUP, OP_MIGRATE)


@dataclass(slots=True)
class OpStats:
    """Streaming statistics for one operation type."""

    count: int = 0
    total_ns: float = 0.0
    max_ns: float = 0.0

    def add(self, duration_ns: float) -> None:
        self.count += 1
        self.total_ns += duration_ns
        if duration_ns > self.max_ns:
            self.max_ns = duration_ns

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1_000.0


@dataclass(slots=True)
class DispatchRecord:
    """One scheduling decision (who ran, and which level chose it)."""

    time: int
    cpu: int
    vcpu: Optional[str]
    level: int  # 1 = table slot, 2 = second-level scheduler, 0 = n/a


class Tracer:
    """Collects per-operation overhead stats and optional event logs.

    Args:
        keep_samples: Retain every individual overhead sample (memory-
            hungry; only for fine-grained analysis).
        keep_dispatches: Retain each scheduling decision; required by the
            second-level-scheduler share statistic (Sec. 7.4).
    """

    def __init__(self, keep_samples: bool = False, keep_dispatches: bool = False):
        self.ops: Dict[str, OpStats] = {op: OpStats() for op in ALL_OPS}
        self.keep_samples = keep_samples
        self.keep_dispatches = keep_dispatches
        self.samples: Dict[str, List[Tuple[int, int, float]]] = {
            op: [] for op in ALL_OPS
        }
        self.dispatches: List[DispatchRecord] = []
        self.context_switches = 0
        self.migrations = 0  # vCPU moved to a different core than last time
        # Online consumers of dispatch records (the health layer's (U, L)
        # guarantee monitors); empty-list truthiness keeps the hot path
        # at one extra compare when nobody listens.
        self.dispatch_listeners: List[
            Callable[[int, int, Optional[str], int], None]
        ] = []

    def record_op(self, op: str, time: int, cpu: int, duration_ns: float) -> None:
        # Inlined OpStats.add: this fires three times per dispatch, so
        # the method call + attribute churn are worth avoiding.
        stats = self.ops[op]
        stats.count += 1
        stats.total_ns += duration_ns
        if duration_ns > stats.max_ns:
            stats.max_ns = duration_ns
        if self.keep_samples:
            self.samples[op].append((time, cpu, duration_ns))

    def record_dispatch(
        self, time: int, cpu: int, vcpu: Optional[str], level: int
    ) -> None:
        if self.keep_dispatches:
            self.dispatches.append(DispatchRecord(time, cpu, vcpu, level))
        if self.dispatch_listeners:
            for listener in self.dispatch_listeners:
                listener(time, cpu, vcpu, level)

    def record_context_switch(self, migrated: bool) -> None:
        self.context_switches += 1
        if migrated:
            self.migrations += 1

    def mean_us(self, op: str) -> float:
        return self.ops[op].mean_us

    def level2_share(self, vcpu: str) -> float:
        """Fraction of a vCPU's dispatches made by the level-2 scheduler.

        Reproduces the Sec. 7.4 statistic ("over 85% of the scheduling
        decisions resulting in the vantage VM's execution were made by
        the level-2 round-robin scheduler").  Requires ``keep_dispatches``.
        """
        relevant = [d for d in self.dispatches if d.vcpu == vcpu and d.level > 0]
        if not relevant:
            return 0.0
        return sum(1 for d in relevant if d.level == 2) / len(relevant)

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {
            op: {
                "count": stats.count,
                "mean_us": stats.mean_us,
                "max_us": stats.max_ns / 1_000.0,
            }
            for op, stats in self.ops.items()
        }
