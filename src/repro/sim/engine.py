"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are ``(time, seq, callback)``
triples in a binary heap; ``seq`` makes ordering stable for simultaneous
events, which keeps every simulation bit-reproducible for a given seed.
Time is integer nanoseconds throughout, matching the planner.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class _Event:
    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> int:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled


class SimEngine:
    """The event loop: schedule callbacks at absolute simulated times.

    Args:
        seed: Seed for the engine-owned RNG handed to stochastic
            workloads; two runs with the same seed produce identical
            event sequences.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: int = 0
        self.rng = random.Random(seed)
        self._heap: List[_Event] = []
        self._seq = 0
        self._running = False

    def at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self.now}"
            )
        event = _Event(time, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def after(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + delay, callback)

    def run_until(self, end_time: int) -> None:
        """Process events in time order until ``end_time`` (inclusive).

        Events scheduled exactly at ``end_time`` run; the engine's clock
        finishes at ``end_time`` even if the heap empties earlier.
        """
        if self._running:
            raise SimulationError("run_until is not re-entrant")
        self._running = True
        try:
            while self._heap and self._heap[0].time <= end_time:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self.now = event.time
                event.callback()
            self.now = max(self.now, end_time)
        finally:
            self._running = False

    def peek_next_time(self) -> Optional[int]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)
