"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are ``(time, seq, event)``
triples in a binary heap; ``seq`` makes ordering stable for simultaneous
events, which keeps every simulation bit-reproducible for a given seed.
Time is integer nanoseconds throughout, matching the planner.

The loop is the simulator's hottest path (every dispatch, wakeup, and
I/O completion goes through it), so the implementation avoids per-event
garbage: heap entries are plain tuples ordered by ``(time, seq)``, the
event *is* its own cancellation handle (one ``__slots__`` object per
scheduled callback), cancellation is lazy (cancelled entries stay in
the heap and are skipped on pop), and the pending-event count is an
O(1) live counter instead of a heap scan.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.hotpath import hotpath


class EventHandle:
    """A scheduled event and its cancellable reference, in one object.

    ``_dead`` is set either by :meth:`cancel` or when the callback runs,
    so a cancel arriving after the event fired is a harmless no-op (the
    live count is only decremented once per event).
    """

    __slots__ = ("time", "seq", "callback", "_dead", "_engine")

    def __init__(
        self, time: int, seq: int, callback: Callable[[], None], engine: "SimEngine"
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self._dead = False
        self._engine = engine

    def cancel(self) -> None:
        if not self._dead:
            self._dead = True
            self._engine._live -= 1

    @property
    def active(self) -> bool:
        return not self._dead


class RecurringHandle:
    """A periodic callback and its cancellable reference.

    Created by :meth:`SimEngine.every`.  After each firing the next
    occurrence is scheduled ``period`` ns later; :meth:`cancel` stops
    the series (a no-op once already cancelled), including when the
    callback cancels its own handle mid-firing — a watchdog that
    decides it is done must not be rescheduled behind its back.  If the
    callback raises — e.g. a strict invariant auditor — the series
    stops with it: the next firing is only scheduled after a normal
    return.
    """

    __slots__ = ("period", "callback", "fires", "_engine", "_event", "_cancelled")

    def __init__(
        self, engine: "SimEngine", period: int, callback: Callable[[], None], start: int
    ) -> None:
        self.period = period
        self.callback = callback
        self.fires = 0
        self._engine = engine
        self._cancelled = False
        self._event: Optional[EventHandle] = engine.at(start, self._fire)

    def _fire(self) -> None:
        self._event = None
        self.fires += 1
        self.callback()
        if not self._cancelled:
            self._event = self._engine.at(self._engine.now + self.period, self._fire)

    def cancel(self) -> None:
        self._cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def set_period(self, period: int) -> None:
        """Change the cadence of subsequent firings.

        The already-scheduled next occurrence keeps its time; every
        firing after it is spaced ``period`` ns apart.  Long-lived
        services use this for adaptive ticks — e.g. a control plane
        widening its batch-flush window under backpressure — without
        tearing down and re-creating the series (which would perturb
        event sequence numbers and with them determinism).
        """
        if period <= 0:
            raise SimulationError(
                f"recurring period must be positive, got {period}"
            )
        self.period = period

    @property
    def active(self) -> bool:
        return (
            not self._cancelled
            and self._event is not None
            and self._event.active
        )


class SimEngine:
    """The event loop: schedule callbacks at absolute simulated times.

    Args:
        seed: Seed for the engine-owned RNG handed to stochastic
            workloads; two runs with the same seed produce identical
            event sequences.

    Attributes:
        events_processed: Number of (non-cancelled) callbacks executed
            so far — the numerator of the dispatch-loop throughput
            benchmark (``benchmarks/hotpath.py``).

    The engine is slotted: ``now``/``_seq``/``_live`` are read and
    written on every event (including by the array backend's fused
    kernels), so instance-dict lookups are worth eliminating.
    """

    __slots__ = (
        "now",
        "rng",
        "_heap",
        "_seq",
        "_live",
        "events_processed",
        "_running",
    )

    def __init__(self, seed: int = 0) -> None:
        self.now: int = 0
        self.rng = random.Random(seed)
        self._heap: List[Tuple[int, int, EventHandle]] = []
        self._seq = 0
        self._live = 0  # scheduled, not yet executed, not cancelled
        self.events_processed = 0
        self._running = False

    def at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = EventHandle(time, seq, callback, self)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def after(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + delay, callback)

    def every(
        self, period: int, callback: Callable[[], None], start: Optional[int] = None
    ) -> RecurringHandle:
        """Schedule ``callback`` every ``period`` ns (first at ``start``,
        defaulting to one period from now)."""
        if period <= 0:
            raise SimulationError(f"recurring period must be positive, got {period}")
        first = self.now + period if start is None else start
        return RecurringHandle(self, period, callback, first)

    @hotpath
    def run_until(self, end_time: int) -> None:
        """Process events in time order until ``end_time`` (inclusive).

        Events scheduled exactly at ``end_time`` run; the engine's clock
        finishes at ``end_time`` even if the heap empties earlier.
        """
        if self._running:
            raise SimulationError("run_until is not re-entrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        try:
            while heap and heap[0][0] <= end_time:
                time, _seq, event = pop(heap)
                if event._dead:
                    continue
                event._dead = True
                self._live -= 1
                self.now = time
                executed += 1
                event.callback()
            self.now = max(self.now, end_time)
        finally:
            self.events_processed += executed
            self._running = False

    def peek_next_time(self) -> Optional[int]:
        heap = self._heap
        while heap and heap[0][2]._dead:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    @property
    def pending_events(self) -> int:
        return self._live
