"""Scheduler-overhead cost model.

Python cannot measure Xen's cycle-level costs, so the simulator *charges*
each scheduler operation a modelled duration built from micro-primitives
(cache references, runqueue scans, atomics, IPIs, lock acquisitions).
The primitive magnitudes are calibrated so that the 16-core I/O-intensive
scenario lands near Table 1 of the paper; everything that makes the
schedulers *differ* — Credit's runqueue scans and load balancing,
Credit2's global runqueue manipulation, RTDS's global lock, Tableau's
constant-time core-local lookup — is structural, not fitted per table.
In particular the 48-core RTDS blow-up (Table 2: 168 us per migrate) is
an emergent property of the FIFO lock simulation under higher contention,
not a hard-coded constant.

All durations are nanoseconds (floats; sub-ns precision keeps means
stable), converted to integer event-time charges by the machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.topology import Topology

#: Direct cost of a context switch (register/VMCS state, ~1.5 us),
#: charged on top of the scheduler's own decision cost.
CONTEXT_SWITCH_NS = 1_500

#: Wire latency of a rescheduling IPI between cores.
IPI_WIRE_NS = 600


@dataclass
class CostModel:
    """Micro-architectural cost primitives for a given machine.

    The remote-access penalty grows with socket count, reflecting longer
    coherence paths on bigger glueless NUMA machines (compare Tables 1
    and 2: even Tableau's core-local costs rise ~1.7x from 2 to 4
    sockets, attributable to occasionally-cold cache lines and a slower
    uncore).
    """

    topology: Topology
    local_line_ns: float = 25.0
    remote_line_ns: float = 130.0
    atomic_ns: float = 45.0
    ipi_send_ns: float = 400.0
    timer_program_ns: float = 180.0
    scan_entry_ns: float = 120.0
    #: Per-socket multiplier applied to remote traffic and shared-state
    #: manipulation: 1.0 on 2 sockets, +50% per extra socket (calibrated
    #: against the Tableau rows of Tables 1 and 2, whose costs are pure
    #: dispatcher work and hence isolate the machine-scaling component).
    def __post_init__(self) -> None:
        self.socket_factor = 1.0 + 0.5 * max(0, self.topology.sockets - 2)

    def local(self, lines: float = 1.0) -> float:
        return self.local_line_ns * lines

    def remote(self, lines: float = 1.0) -> float:
        return self.remote_line_ns * lines * self.socket_factor

    def scan(self, entries: int, remote: bool = False) -> float:
        per_entry = self.scan_entry_ns * (self.socket_factor if remote else 1.0)
        return per_entry * entries

    def ipi(self) -> float:
        return self.ipi_send_ns * (0.5 + 0.5 * self.socket_factor)


class GlobalLock:
    """A FIFO spinlock simulated in virtual time.

    ``acquire(now, hold_ns)`` returns the wait time a caller experiences:
    zero when free, otherwise the residual hold time of everyone queued
    ahead.  Contention is therefore *emergent* — it depends on how often
    the owning scheduler takes the lock and for how long, which is what
    makes RTDS's migrate cost explode on 48 cores while staying modest
    on 16 (Sec. 7.2).

    A physical bound applies: a ticket lock can have at most
    ``max_waiters`` cores queued (each machine core spins at most once),
    so the wait never exceeds ``max_waiters`` critical sections.  Without
    this bound the simulated queue could grow without limit, because
    simulated I/O completion timers — unlike real interrupt handlers —
    are not themselves slowed by lock contention.

    Args:
        max_waiters: Cores that can simultaneously spin (n_cores - 1).
    """

    def __init__(self, max_waiters: int = 64) -> None:
        self.max_waiters = max_waiters
        self.free_at: float = 0.0
        self.acquisitions: int = 0
        self.total_wait_ns: float = 0.0

    def acquire(
        self, now: float, hold_ns: float, max_wait_holds: Optional[int] = None
    ) -> float:
        """Take the lock; returns the wait experienced.

        ``max_wait_holds`` optionally bounds the spin to that many
        critical sections of this caller's own hold length — modelling
        short paths (e.g. wakeup processing) that are designed to touch
        the lock only briefly and slot in between long holders.
        """
        wait = max(0.0, self.free_at - now)
        cap = self.max_waiters * hold_ns
        if max_wait_holds is not None:
            cap = min(cap, max_wait_holds * hold_ns)
        wait = min(wait, cap)
        # Note: assignment (not max) — a full spin queue accepts no more
        # waiters, so backlog beyond the cap is physically impossible.
        self.free_at = now + wait + hold_ns
        self.acquisitions += 1
        self.total_wait_ns += wait
        return wait

    @property
    def mean_wait_ns(self) -> float:
        return self.total_wait_ns / self.acquisitions if self.acquisitions else 0.0


@dataclass
class OverheadCharge:
    """What one scheduler operation costs, split by trace category."""

    schedule_ns: float = 0.0
    wakeup_ns: float = 0.0
    migrate_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        return self.schedule_ns + self.wakeup_ns + self.migrate_ns


def make_cost_model(topology: Topology) -> CostModel:
    """Cost model for a topology (constructor kept separate for tests)."""
    return CostModel(topology=topology)
