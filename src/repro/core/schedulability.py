"""Uniprocessor EDF schedulability analysis (demand bound functions).

The C=D semi-partitioning stage needs to answer two questions quickly:

1. Is a set of constrained-deadline periodic tasks EDF-schedulable on
   one core?  (Processor-demand criterion, Baruah et al.)
2. What is the largest C=D piece (a zero-laxity subtask with
   ``deadline == cost``) that can be added to a core without making it
   unschedulable?  (Binary search over the piece size.)

All tests here treat tasks as synchronously released, which is exact for
sporadic tasks and safely conservative for the offset subtasks produced
by task splitting.  Demand evaluation is vectorized with numpy since the
planner may run thousands of these tests while searching for splits.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.tasks import PeriodicTask

#: Absolute slack (ns) required beyond the demand bound; guards against
#: pathological zero-slack schedules that the dispatcher could not enforce.
DEFAULT_SLACK_NS = 0


def _deadline_points(tasks: Sequence[PeriodicTask], horizon: int) -> np.ndarray:
    """All absolute deadlines of synchronous jobs within ``[0, horizon]``.

    For task sets whose periods divide the horizon (always true for
    Tableau's hyperperiod-divisor periods) it is sufficient to check the
    demand criterion at these points only: demand is right-continuous and
    increases only at deadlines, and ``dbf(t + H) = dbf(t) + U * H <=
    dbf(t) + H`` whenever total utilization is at most one.
    """
    points: List[np.ndarray] = []
    for task in tasks:
        deadline = task.deadline
        if deadline > horizon:
            continue
        count = (horizon - deadline) // task.period + 1
        points.append(deadline + task.period * np.arange(count, dtype=np.int64))
    if not points:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(points))


def demand_bound(tasks: Sequence[PeriodicTask], times: np.ndarray) -> np.ndarray:
    """Total processor demand ``dbf(t)`` of ``tasks`` at each time in ``times``.

    ``dbf(t) = sum_i max(0, floor((t - D_i) / T_i) + 1) * C_i`` — the
    cumulative execution of all jobs with both release and deadline
    inside ``[0, t]``.
    """
    demand = np.zeros(len(times), dtype=np.int64)
    for task in tasks:
        jobs = (times - task.deadline) // task.period + 1
        np.maximum(jobs, 0, out=jobs)
        demand += jobs * task.cost
    return demand


def edf_schedulable(
    tasks: Sequence[PeriodicTask],
    horizon: int,
    slack_ns: int = DEFAULT_SLACK_NS,
) -> bool:
    """Processor-demand test: EDF schedulable iff ``dbf(t) <= t`` everywhere.

    ``horizon`` must be a common multiple of all task periods (Tableau
    always passes the table hyperperiod).
    """
    if not tasks:
        return True
    total_util = sum(t.utilization for t in tasks)
    if total_util > 1.0 + 1e-12:
        return False
    times = _deadline_points(tasks, horizon)
    if len(times) == 0:
        return True
    demand = demand_bound(tasks, times)
    return bool(np.all(demand + slack_ns <= times))


def max_cd_piece(
    existing: Sequence[PeriodicTask],
    period: int,
    max_cost: int,
    horizon: int,
    min_piece_ns: int = 1,
    slack_ns: int = DEFAULT_SLACK_NS,
) -> Optional[int]:
    """Largest C=D piece (cost == deadline) of ``period`` that fits on a core.

    Returns the largest ``c`` in ``[min_piece_ns, max_cost]`` such that
    ``existing + [(c, D=c, T=period)]`` stays EDF-schedulable, or ``None``
    if not even ``min_piece_ns`` fits.  This is the inner search of the
    C=D task-splitting scheme (Burns et al. [12]): the piece runs with
    zero laxity, so EDF executes it immediately on release and the split
    task's remainder can safely start on another core once the piece's
    deadline passes.

    The predicate "piece of size c fits" is monotone in ``c`` (a larger
    zero-laxity piece strictly dominates a smaller one in demand), so a
    plain binary search is exact.
    """
    if max_cost < min_piece_ns:
        return None
    remaining_capacity = 1.0 - sum(t.utilization for t in existing)
    if remaining_capacity <= 0.0:
        return None
    # Utilization is a hard ceiling for any piece size.
    cap = min(max_cost, int(remaining_capacity * period))
    if cap < min_piece_ns:
        return None

    def fits(cost: int) -> bool:
        piece = PeriodicTask(
            name="__probe#0", cost=cost, period=period, deadline=cost
        )
        return edf_schedulable(list(existing) + [piece], horizon, slack_ns)

    if not fits(min_piece_ns):
        return None
    lo, hi = min_piece_ns, cap
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid - 1
    return lo


def core_utilization(tasks: Iterable[PeriodicTask]) -> float:
    """Total utilization of the tasks assigned to one core."""
    return sum(t.utilization for t in tasks)


def qpa_schedulable(
    tasks: Sequence[PeriodicTask],
    horizon: int,
    slack_ns: int = DEFAULT_SLACK_NS,
) -> bool:
    """Quick Processor-demand Analysis (Zhang & Burns, 2009).

    An exact EDF test equivalent to :func:`edf_schedulable` but usually
    far faster: instead of evaluating ``dbf`` at *every* deadline, QPA
    iterates backwards from the end of the busy interval —
    ``t <- dbf(t)`` (or the largest deadline strictly below ``t`` when
    demand equals supply) — and terminates once ``t`` falls below the
    smallest deadline.  The demand function is the same; only the set of
    inspection points shrinks, typically to a handful.

    Used by the semi-partitioning search when probing many candidate
    splits; property tests cross-validate it against the exhaustive DBF
    test on random task sets.
    """
    if not tasks:
        return True
    if sum(t.utilization for t in tasks) > 1.0 + 1e-12:
        return False
    min_deadline = min(t.deadline for t in tasks)

    def dbf(time: int) -> int:
        demand = 0
        for task in tasks:
            jobs = (time - task.deadline) // task.period + 1
            if jobs > 0:
                demand += jobs * task.cost
        return demand

    def max_deadline_below(time: int) -> int:
        best = 0
        for task in tasks:
            if task.deadline >= time:
                continue
            # Largest absolute deadline of this task strictly below `time`.
            k = (time - 1 - task.deadline) // task.period
            best = max(best, task.deadline + k * task.period)
        return best

    t = max_deadline_below(horizon + 1)
    while t >= min_deadline:
        demand = dbf(t)
        if demand + slack_ns > t:
            return False
        if demand < t:
            t = demand if demand >= min_deadline else min_deadline - 1
            if t >= min_deadline:
                # Snap to an actual deadline point at or below t.
                t = max_deadline_below(t + 1)
        else:
            t = max_deadline_below(t)
        if t == 0:
            break
    return True
