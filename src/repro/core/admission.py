"""Admission control: reject infeasible VM sets before planning.

The planner guarantees table generation succeeds for "any possible
configuration of VMs that does not over-utilize the system" (Sec. 5).
Over-utilization — or a latency goal below what the candidate-period set
can express — is a misconfiguration that must be rejected up front, so
the control plane can fail a VM-create request instead of degrading
already-running tenants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.params import VCpuSpec
from repro.core.periods import HYPERPERIOD_NS, MIN_PERIOD_NS, select_period
from repro.errors import AdmissionError, LatencyInfeasibleError

#: Utilization-sum tolerance absorbing integer-ns cost rounding.
ADMISSION_EPSILON = 1e-6

#: Latency-feasibility memo: (U, L, hyperperiod, min_period) -> None
#: when a period exists, else the exact error text.  Admission runs on
#: every replan over a mostly-unchanged census, so the same handful of
#: (U, L) pairs is re-checked constantly; the verdict (including the
#: message) is a pure function of the key.  Cleared wholesale when full.
_FEASIBILITY_CACHE: Dict[Tuple[float, int, int, int], Optional[str]] = {}
_FEASIBILITY_CACHE_SIZE = 4096
_MISS = object()


@dataclass
class AdmissionReport:
    """Outcome of an admission check.

    ``dedicated`` lists vCPUs with U = 1 that will be pinned to their own
    cores; ``shared_utilization`` is the load the remaining vCPUs place
    on the remaining cores.
    """

    admitted: bool
    num_cores: int
    dedicated: List[str] = field(default_factory=list)
    shared_utilization: float = 0.0
    reasons: List[str] = field(default_factory=list)

    @property
    def shared_cores(self) -> int:
        return self.num_cores - len(self.dedicated)


def check_admission(
    vcpus: Sequence[VCpuSpec],
    num_cores: int,
    hyperperiod_ns: int = HYPERPERIOD_NS,
    min_period_ns: int = MIN_PERIOD_NS,
) -> AdmissionReport:
    """Validate a vCPU set against a core budget without raising.

    Checks, in order: every latency goal is expressible with some
    candidate period; fully reserved (U = 1) vCPUs do not exhaust the
    machine; and the remaining utilization fits on the remaining cores.
    """
    report = AdmissionReport(admitted=True, num_cores=num_cores)
    if num_cores < 1:
        report.admitted = False
        report.reasons.append("no cores available")
        return report

    shared = 0.0
    for vcpu in vcpus:
        if vcpu.needs_dedicated_core:
            report.dedicated.append(vcpu.name)
            continue
        shared += vcpu.utilization
        key = (vcpu.utilization, vcpu.latency_ns, hyperperiod_ns, min_period_ns)
        verdict = _FEASIBILITY_CACHE.get(key, _MISS)
        if verdict is _MISS:
            try:
                select_period(
                    vcpu.utilization,
                    vcpu.latency_ns,
                    hyperperiod_ns=hyperperiod_ns,
                    min_period_ns=min_period_ns,
                    strict=True,
                )
                verdict = None
            except LatencyInfeasibleError as error:
                verdict = str(error)
            if len(_FEASIBILITY_CACHE) >= _FEASIBILITY_CACHE_SIZE:
                _FEASIBILITY_CACHE.clear()
            _FEASIBILITY_CACHE[key] = verdict
        if verdict is not None:
            report.admitted = False
            report.reasons.append(verdict)
    report.shared_utilization = shared

    if len(report.dedicated) > num_cores:
        report.admitted = False
        report.reasons.append(
            f"{len(report.dedicated)} dedicated vCPUs exceed {num_cores} cores"
        )
    elif shared > report.shared_cores + ADMISSION_EPSILON:
        report.admitted = False
        report.reasons.append(
            f"shared utilization {shared:.4f} exceeds capacity of "
            f"{report.shared_cores} non-dedicated cores"
        )
    return report


def admit_or_raise(
    vcpus: Sequence[VCpuSpec],
    num_cores: int,
    hyperperiod_ns: int = HYPERPERIOD_NS,
    min_period_ns: int = MIN_PERIOD_NS,
) -> AdmissionReport:
    """Raise :class:`AdmissionError` when the configuration is infeasible."""
    report = check_admission(vcpus, num_cores, hyperperiod_ns, min_period_ns)
    if not report.admitted:
        raise AdmissionError("; ".join(report.reasons))
    return report
