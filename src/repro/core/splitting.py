"""C=D semi-partitioning (Burns et al. [12]) for tasks that fit nowhere.

When worst-fit decreasing fails to place a task, the planner breaks it
into subtasks with precedence constraints (Sec. 5, "Semi-partitioning").
The C=D scheme makes each migrated piece a *zero-laxity* subtask — its
relative deadline equals its budget — so EDF necessarily runs it to
completion immediately, and the next piece (released on another core
when the previous piece's deadline passes) can never execute in parallel
with it.  No core is overloaded because every piece is admitted through
a demand-bound schedulability test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.partition import PartitionResult, worst_fit_decreasing
from repro.core.schedulability import edf_schedulable, max_cd_piece
from repro.core.tasks import PeriodicTask

#: Smallest piece worth creating (ns).  Pieces below the dispatcher's
#: enforcement granularity would be erased again by coalescing, so the
#: search never produces them.  Matches the planner's default coalescing
#: threshold.
DEFAULT_MIN_PIECE_NS = 100_000


@dataclass
class SemiPartitionResult:
    """Outcome of partitioning with C=D splitting as a fallback.

    ``assignment`` maps cores to tasks *including* split pieces (their
    names carry ``#k`` suffixes and their ``vcpu`` back-references point
    at the original vCPU).  ``splits`` records, per original task name,
    the pieces created and where they went.  Anything in ``unassigned``
    must be handed to the localized-optimal stage.
    """

    assignment: Dict[int, List[PeriodicTask]]
    splits: Dict[str, List[Tuple[int, PeriodicTask]]] = field(default_factory=dict)
    unassigned: List[PeriodicTask] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return not self.unassigned

    @property
    def split_count(self) -> int:
        return len(self.splits)


def _core_order(
    assignment: Dict[int, List[PeriodicTask]], cores: Sequence[int]
) -> List[int]:
    """Cores sorted by remaining utilization, emptiest first."""

    def remaining(core: int) -> float:
        return 1.0 - sum(t.utilization for t in assignment[core])

    return sorted(cores, key=lambda c: (-remaining(c), c))


def semi_partition(
    tasks: Sequence[PeriodicTask],
    cores: Sequence[int],
    horizon: int,
    capacities: Optional[Dict[int, float]] = None,
    min_piece_ns: int = DEFAULT_MIN_PIECE_NS,
    rotation: int = 0,
) -> SemiPartitionResult:
    """Partition ``tasks``, splitting any task WFD cannot place.

    The splitting strategy follows the paper's description: first try
    ordinary worst-fit decreasing; each leftover task is then carved into
    a chain of C=D pieces.  For every piece we pick the core that can
    accept the *largest* zero-laxity piece (minimizing the number of
    pieces and hence runtime migrations), place it, and continue with the
    remainder — whose deadline shrinks by the piece size so that the
    chain's precedence constraints are encoded purely in offsets and
    deadlines.  If at any point the remainder fits whole on some core
    (demand-bound test), it is placed and the task is done.
    """
    base = worst_fit_decreasing(tasks, cores, capacities, rotation=rotation)
    assignment = {core: list(ts) for core, ts in base.assignment.items()}
    result = SemiPartitionResult(assignment=assignment)

    for task in base.unassigned:
        placed = _place_with_splitting(
            task, assignment, cores, horizon, min_piece_ns, result.splits
        )
        if not placed:
            result.unassigned.append(task)
    return result


def _fits_whole(
    task: PeriodicTask, core_tasks: Sequence[PeriodicTask], horizon: int
) -> bool:
    return edf_schedulable(list(core_tasks) + [task], horizon)


def _place_with_splitting(
    task: PeriodicTask,
    assignment: Dict[int, List[PeriodicTask]],
    cores: Sequence[int],
    horizon: int,
    min_piece_ns: int,
    splits: Dict[str, List[Tuple[int, PeriodicTask]]],
) -> bool:
    """Try to place ``task``, splitting into C=D pieces as needed.

    Mutates ``assignment``/``splits`` only on success; on failure any
    partial placement is rolled back so the localized-optimal stage sees
    a clean slate.
    """
    remainder = task
    pieces: List[Tuple[int, PeriodicTask]] = []
    used_cores: List[int] = []

    while True:
        order = [c for c in _core_order(assignment, cores) if c not in used_cores]
        # A remainder that fits somewhere whole ends the chain.
        placed_whole = False
        for core in order:
            if _fits_whole(remainder, assignment[core], horizon):
                pieces.append((core, remainder))
                placed_whole = True
                break
        if placed_whole:
            break

        # Otherwise carve the largest C=D piece we can, leaving at least a
        # minimum-size remainder so the chain can terminate.
        best: Optional[Tuple[int, int]] = None  # (piece_cost, core)
        for core in order:
            piece_cost = max_cd_piece(
                assignment[core],
                period=remainder.period,
                max_cost=remainder.cost - min_piece_ns,
                horizon=horizon,
                min_piece_ns=min_piece_ns,
            )
            if piece_cost is not None and (best is None or piece_cost > best[0]):
                best = (piece_cost, core)
        if best is None:
            return False  # nothing fits anywhere; roll back
        piece_cost, core = best
        piece, remainder = remainder.split(piece_cost)
        pieces.append((core, piece))
        used_cores.append(core)
        if len(used_cores) >= len(cores):
            return False

    if len(pieces) == 1 and "#" not in pieces[0][1].name:
        # No split was needed after all (a whole-fit on first attempt).
        core, whole = pieces[0]
        assignment[core].append(whole)
        return True

    for core, piece in pieces:
        assignment[core].append(piece)
    splits[task.name] = pieces
    return True


def pieces_of(result: SemiPartitionResult, task_name: str) -> List[PeriodicTask]:
    """The ordered C=D chain created for ``task_name`` (empty if unsplit)."""
    return [piece for _core, piece in result.splits.get(task_name, [])]


def verify_chain(pieces: Sequence[PeriodicTask], original: PeriodicTask) -> bool:
    """Sanity-check a C=D chain: budgets, offsets, and deadlines line up.

    The chain must conserve the original budget, release each piece when
    its predecessor's deadline passes (so pieces never run in parallel),
    and complete by the original deadline.
    """
    if not pieces:
        return False
    if sum(p.cost for p in pieces) != original.cost:
        return False
    expected_offset = original.offset
    for piece in pieces[:-1]:
        if piece.offset != expected_offset or not piece.is_zero_laxity:
            return False
        expected_offset += piece.cost
    last = pieces[-1]
    return (
        last.offset == expected_offset
        and last.offset + last.deadline == original.offset + original.deadline
    )
