"""Atomic durable writes: the one temp-then-rename helper.

Every write to a durable path in the control plane (plan-store entries,
campaign aggregates, service reports written by library code) must be
all-or-nothing: a reader — possibly a concurrent process, possibly the
same process after a crash-restart — must see either the complete old
bytes or the complete new bytes, never a torn mixture.  The POSIX
recipe is a per-writer temporary file in the destination directory
followed by ``os.replace``.

This module is that recipe, written once; the ``err-nonatomic-write``
lint rule forbids open-mode ``"w"``/``"x"`` writes (and
``Path.write_bytes``/``write_text``) in ``repro.service``,
``repro.core.plancache``, and ``repro.campaign`` so durable writes
cannot quietly bypass it.  Append-only files (journals, run logs) are
exempt: appends are their atomicity story.

``crash_point`` names a :mod:`repro.crashpoints` site consulted between
the temp write and the rename — the exact window where a real crash
orphans the temp file — so crash tests can prove the atomicity claim
rather than assume it.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from repro.crashpoints import crashpoint


def atomic_write_bytes(
    path: Union[str, Path],
    data: bytes,
    crash_point: Optional[str] = None,
) -> Path:
    """Write ``data`` to ``path`` atomically; returns the path.

    The temp file carries the writer's pid, so concurrent writers on
    the same destination never interleave bytes; the final
    ``os.replace`` is atomic on POSIX.  A crash between the two leaves
    only a ``*.tmp.<pid>`` orphan (reclaimed by the owner's startup
    sweep / fsck), never a torn destination.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    tmp.write_bytes(data)
    if crash_point is not None:
        crashpoint(crash_point)
    os.replace(tmp, target)
    return target


def atomic_write_text(
    path: Union[str, Path],
    text: str,
    encoding: str = "utf-8",
    crash_point: Optional[str] = None,
) -> Path:
    """Text counterpart of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(
        path, text.encode(encoding), crash_point=crash_point
    )
