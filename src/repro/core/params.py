"""vCPU and VM reservation parameters.

Under Tableau every vCPU is configured with a *reserved utilization* U
and a *maximum scheduling latency* L (Sec. 5).  Both may come from an
explicit SLA, a price-differentiated service tier, or a fair-share
default (``U = m / n``).  This module defines the value types the planner
consumes, plus the service-tier / fair-share helpers the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, NewType, Optional, Sequence

from repro.errors import ConfigurationError

#: Integer nanoseconds on the simulated clock.  The repo-wide convention
#: (enforced by ``repro.lint``'s time-unit rules) is that clock values
#: are integers; only *measured* quantities (cost models, statistics)
#: may be floats, and must say so with an explicit ``float`` annotation.
#: ``Nanoseconds`` is a zero-cost ``NewType`` — it behaves exactly like
#: ``int`` at runtime but lets mypy track where a value is known to be a
#: nanosecond count rather than a bare integer.
Nanoseconds = NewType("Nanoseconds", int)

#: Physical core index within a :class:`repro.topology.Topology`
#: (0-based, socket-major order).
CoreId = NewType("CoreId", int)

#: Xen-style numeric domain identifier (domid 0 is dom0, the control
#: domain; guests start at 1).
DomainId = NewType("DomainId", int)

#: Convenience time-unit constants (nanoseconds).
US = Nanoseconds(1_000)
MS = Nanoseconds(1_000_000)
SEC = Nanoseconds(1_000_000_000)


def seconds_to_ns(seconds: float) -> Nanoseconds:
    """Convert a duration in (float) seconds to integer nanoseconds.

    The repo-wide exact-int boundary for wall-style durations entering
    the simulated clock: convert to ns *once*, here, and do all further
    arithmetic (spacing, splitting into parts) in integer space with
    ``//``.  Forms like ``int(duration_s * 1e9 / parts)`` perform the
    division in float space, where exactness is already lost — the
    ``time-lossy-div-ns`` lint rule flags them and points here.
    """
    if seconds < 0:
        raise ConfigurationError(f"negative duration {seconds!r}")
    return Nanoseconds(int(seconds * SEC))


@dataclass(frozen=True)
class VCpuSpec:
    """Reservation parameters for one vCPU.

    Attributes:
        name: Unique identifier (e.g. ``"vm7.vcpu0"``).
        utilization: Reserved CPU share U in (0, 1].
        latency_ns: Maximum acceptable scheduling latency L (nanoseconds).
        capped: If True the vCPU may never exceed its reservation; if
            False it is eligible for spare cycles via the second-level
            scheduler (Sec. 4).
        vm: Name of the owning VM (defaults to the vCPU name's prefix).
    """

    name: str
    utilization: float
    latency_ns: int
    capped: bool = False
    vm: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("vCPU name must be non-empty")
        if not 0.0 < self.utilization <= 1.0:
            raise ConfigurationError(
                f"{self.name}: utilization {self.utilization} outside (0, 1]"
            )
        if self.latency_ns <= 0:
            raise ConfigurationError(
                f"{self.name}: latency goal must be positive, got {self.latency_ns}"
            )
        if self.vm is None:
            object.__setattr__(self, "vm", self.name.split(".")[0])

    def __hash__(self) -> int:
        # Specs are hashed constantly (planner memo keys, task caches);
        # the dataclass-generated hash rebuilds a field tuple every call,
        # so compute it once and pin it on the (frozen) instance.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(
                (self.name, self.utilization, self.latency_ns, self.capped, self.vm)
            )
            object.__setattr__(self, "_hash", cached)
        return cached

    @property
    def needs_dedicated_core(self) -> bool:
        """A fully reserved vCPU (U = 1) is pinned to its own pCPU."""
        return self.utilization >= 1.0


@dataclass(frozen=True)
class VMSpec:
    """A VM is a named group of vCPUs sharing a lifecycle.

    The planner operates on vCPUs; VM grouping matters for the control
    plane (creation/teardown triggers replanning for all of the VM's
    vCPUs at once) and for co-scheduling extensions.
    """

    name: str
    vcpus: Sequence[VCpuSpec] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("VM name must be non-empty")
        if not self.vcpus:
            raise ConfigurationError(f"VM {self.name} must have at least one vCPU")
        names = [v.name for v in self.vcpus]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"VM {self.name} has duplicate vCPU names")

    @property
    def total_utilization(self) -> float:
        return sum(v.utilization for v in self.vcpus)


#: Interning memo for :func:`make_vm` (cleared wholesale when full).
#: Specs are immutable value objects, so identical requests — the
#: steady state of a control plane that rebuilds its census on every
#: replan — can share one instance instead of re-validating and
#: re-allocating the whole VM every time.
_VM_MEMO: Dict[tuple, "VMSpec"] = {}
_VM_MEMO_SIZE = 4096


def make_vm(
    name: str,
    utilization: float,
    latency_ns: int,
    vcpu_count: int = 1,
    capped: bool = False,
) -> VMSpec:
    """Build a VM whose vCPUs all share one (U, L) configuration.

    This mirrors the paper's evaluation setup of uniform single-vCPU VMs
    (e.g., four 25%-utilization VMs per core).  Identical requests
    return a shared (immutable) instance.
    """
    key = (name, utilization, latency_ns, vcpu_count, capped)
    memo = _VM_MEMO.get(key)
    if memo is not None:
        return memo
    if vcpu_count < 1:
        raise ConfigurationError("vcpu_count must be >= 1")
    vcpus = tuple(
        VCpuSpec(
            name=f"{name}.vcpu{i}",
            utilization=utilization,
            latency_ns=latency_ns,
            capped=capped,
            vm=name,
        )
        for i in range(vcpu_count)
    )
    vm = VMSpec(name=name, vcpus=vcpus)
    if len(_VM_MEMO) >= _VM_MEMO_SIZE:
        _VM_MEMO.clear()
    _VM_MEMO[key] = vm
    return vm


def fair_share_specs(
    vm_names: Sequence[str],
    num_cores: int,
    latency_ns: int = 20 * MS,
    capped: bool = False,
) -> List[VMSpec]:
    """Fair-share provisioning: ``U = m / n`` for n single-vCPU VMs.

    The paper notes (Sec. 5, footnote) that Tableau needs no more input
    than Credit or CFS: utilizations can be derived from the core count
    and the VM census, with a default latency bound comparable to
    Credit's quantum.
    """
    n = len(vm_names)
    if n == 0:
        raise ConfigurationError("need at least one VM")
    if num_cores < 1:
        raise ConfigurationError("need at least one core")
    share = min(1.0, num_cores / n)
    return [make_vm(name, share, latency_ns, capped=capped) for name in vm_names]


@dataclass(frozen=True)
class ServiceTier:
    """A price-differentiated service tier (utilization + latency bound)."""

    name: str
    utilization: float
    latency_ns: int
    capped: bool = True


#: Illustrative tier catalogue used by examples; utilizations are chosen
#: to keep the provider's bin-packing problem simple (Sec. 5, "we expect
#: this partitioning step to succeed in most cases in practice").
DEFAULT_TIERS: Dict[str, ServiceTier] = {
    "economy": ServiceTier("economy", 0.125, 100 * MS),
    "standard": ServiceTier("standard", 0.25, 30 * MS),
    "performance": ServiceTier("performance", 0.5, 10 * MS),
    "dedicated": ServiceTier("dedicated", 1.0, 1 * MS),
}


def vms_from_tiers(
    requests: Iterable[tuple], tiers: Optional[Dict[str, ServiceTier]] = None
) -> List[VMSpec]:
    """Instantiate VMs from ``(vm_name, tier_name)`` requests."""
    catalogue = DEFAULT_TIERS if tiers is None else tiers
    vms = []
    for vm_name, tier_name in requests:
        try:
            tier = catalogue[tier_name]
        except KeyError:
            raise ConfigurationError(f"unknown service tier {tier_name!r}") from None
        vms.append(
            make_vm(vm_name, tier.utilization, tier.latency_ns, capped=tier.capped)
        )
    return vms


def flatten_vcpus(vms: Iterable[VMSpec]) -> List[VCpuSpec]:
    """Collect all vCPUs of a VM set, validating global name uniqueness."""
    vcpus: List[VCpuSpec] = []
    seen = set()
    for vm in vms:
        for vcpu in vm.vcpus:
            if vcpu.name in seen:
                raise ConfigurationError(f"duplicate vCPU name {vcpu.name!r}")
            seen.add(vcpu.name)
            vcpus.append(vcpu)
    return vcpus
