"""Periodic task model (Liu & Layland) and the vCPU -> task mapping.

The planner reduces table generation to multiprocessor hard real-time
scheduling: each vCPU (U, L) becomes a periodic task (C, T) with
``U = C / T`` and ``T`` the largest candidate period such that the
worst-case blackout ``2 * (T - C)`` stays within L (Sec. 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.core.params import VCpuSpec
from repro.core.periods import (
    HYPERPERIOD_NS,
    MIN_PERIOD_NS,
    select_period,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PeriodicTask:
    """A (possibly constrained-deadline, offset) periodic task.

    Plain vCPU reservations map to implicit-deadline tasks
    (``deadline == period``, ``offset == 0``).  C=D semi-partitioning
    (Sec. 5) produces constrained-deadline subtasks with release offsets:
    the i-th piece of a split task is released ``offset`` ns into each
    period and must finish within ``deadline`` ns of its release so the
    pieces chain without ever running in parallel.

    Attributes:
        name: Task identifier; subtasks get a ``#k`` suffix.
        cost: Worst-case execution budget C per period (ns).
        period: Period T (ns).
        deadline: Relative deadline D (ns); defaults to T.
        offset: Release offset within the period (ns).
        vcpu: The originating vCPU spec, if any.
    """

    name: str
    cost: int
    period: int
    deadline: Optional[int] = None
    offset: int = 0
    vcpu: Optional[VCpuSpec] = None

    def __post_init__(self) -> None:
        if self.deadline is None:
            object.__setattr__(self, "deadline", self.period)
        if self.cost <= 0:
            raise ConfigurationError(f"{self.name}: cost must be positive")
        if self.period <= 0:
            raise ConfigurationError(f"{self.name}: period must be positive")
        if self.cost > self.deadline:
            raise ConfigurationError(
                f"{self.name}: cost {self.cost} exceeds deadline {self.deadline}"
            )
        if self.deadline + self.offset > self.period:
            raise ConfigurationError(
                f"{self.name}: offset {self.offset} + deadline {self.deadline} "
                f"exceeds period {self.period}"
            )
        if self.offset < 0:
            raise ConfigurationError(f"{self.name}: offset must be non-negative")

    @property
    def utilization(self) -> float:
        return self.cost / self.period

    @property
    def density(self) -> float:
        """C / D — the schedulability-relevant load of a constrained task."""
        return self.cost / self.deadline

    @property
    def is_zero_laxity(self) -> bool:
        """True for C=D subtasks, which must run immediately on release."""
        return self.cost == self.deadline

    def split(self, first_cost: int) -> tuple["PeriodicTask", "PeriodicTask"]:
        """Split off a C=D piece of ``first_cost`` ns (Burns et al. [12]).

        Returns ``(cd_piece, remainder)``.  The C=D piece inherits this
        task's offset and has ``deadline == cost`` (zero laxity); the
        remainder is released when the piece's deadline passes and must
        finish by the original deadline.  Because the piece provably
        completes by its deadline under EDF, the two never overlap in
        time even though they live on different cores.
        """
        if not 0 < first_cost < self.cost:
            raise ConfigurationError(
                f"{self.name}: split cost {first_cost} outside (0, {self.cost})"
            )
        base = self.name.split("#")[0]
        index = int(self.name.split("#")[1]) if "#" in self.name else 0
        piece = replace(
            self,
            name=f"{base}#{index}",
            cost=first_cost,
            deadline=first_cost,
        )
        remainder = replace(
            self,
            name=f"{base}#{index + 1}",
            cost=self.cost - first_cost,
            offset=self.offset + first_cost,
            deadline=self.deadline - first_cost,
        )
        return piece, remainder


def vcpu_to_task(
    vcpu: VCpuSpec,
    hyperperiod_ns: int = HYPERPERIOD_NS,
    min_period_ns: int = MIN_PERIOD_NS,
    strict_latency: bool = True,
) -> PeriodicTask:
    """Map a vCPU reservation (U, L) to a periodic task (C, T).

    The period is the largest hyperperiod divisor satisfying the blackout
    bound; the cost is ``floor(U * T)`` (at least 1 ns).  Rounding *down*
    matters: rounding up would inflate each task's utilization by up to
    1/T, making exactly-provisioned configurations (e.g., four 25% vCPUs
    per core) unschedulable.  The guarantee consequently holds to within
    one nanosecond per period — far below enforcement granularity.
    """
    period = select_period(
        vcpu.utilization,
        vcpu.latency_ns,
        hyperperiod_ns=hyperperiod_ns,
        min_period_ns=min_period_ns,
        strict=strict_latency,
    )
    cost = max(1, math.floor(vcpu.utilization * period))
    return PeriodicTask(name=vcpu.name, cost=cost, period=period, vcpu=vcpu)


def vcpus_to_tasks(
    vcpus: Sequence[VCpuSpec],
    hyperperiod_ns: int = HYPERPERIOD_NS,
    min_period_ns: int = MIN_PERIOD_NS,
    strict_latency: bool = True,
) -> List[PeriodicTask]:
    """Vectorized :func:`vcpu_to_task` preserving input order."""
    return [
        vcpu_to_task(v, hyperperiod_ns, min_period_ns, strict_latency) for v in vcpus
    ]


def total_utilization(tasks: Sequence[PeriodicTask]) -> float:
    return sum(t.utilization for t in tasks)


def max_blackout_of_task(task: PeriodicTask) -> int:
    """Worst-case service gap for an implicit-deadline periodic task."""
    return 2 * (task.period - task.cost)
