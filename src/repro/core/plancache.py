"""Content-addressed on-disk plan cache (the campaign engine's warm path).

Sec. 7.1 observes that tables for common configurations can be
"trivially" cached and reused.  :class:`~repro.core.cache.TableCache`
does that within one process; this module extends the idea across
processes and runs: a :class:`PlanStore` persists finished
:class:`~repro.core.planner.PlanResult` objects on disk, keyed by a
fingerprint of the *exact* planning inputs — the same
(task-set, knob) identity the planner's per-core memo keys on, widened
to the whole census plus the topology.  Repeated densities across
benchmarks, campaign shards, and re-runs then skip table generation
entirely.

Entries are self-validating: a fixed-size header carries a magic
number, the store format version, and a SHA-256 digest of the payload.
A corrupt, truncated, or version-mismatched entry is never trusted —
``get`` reports a miss (counted in :attr:`PlanStoreStats.invalid`),
removes the bad file best-effort, and the caller regenerates.  Writes
go to a per-writer temporary file followed by an atomic ``os.replace``,
so concurrent writers on the same key cannot interleave bytes: readers
see either a complete old entry or a complete new one.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.core.atomicio import atomic_write_bytes
from repro.core.params import VCpuSpec, VMSpec, flatten_vcpus
from repro.crashpoints import CRASH_PLANCACHE_PRE_RENAME

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.planner import Planner, PlanResult
    from repro.topology import Topology

#: Either shape the planner itself accepts.
Workload = Union[Sequence[VMSpec], Sequence[VCpuSpec]]


def _as_vcpus(workload: Workload) -> Sequence[VCpuSpec]:
    items = list(workload)
    if items and isinstance(items[0], VMSpec):
        return flatten_vcpus(items)  # type: ignore[arg-type]
    return items  # type: ignore[return-value]

#: On-disk entry format: magic | version u16 | reserved u16 | sha256.
MAGIC = b"TPLC"

#: Bump when the pickled payload's semantics change (e.g., PlanResult
#: grows a field whose absence would be misread); old entries are then
#: regenerated rather than trusted.  v2: the columnar planner stores
#: segment columns on each ``CoreTable`` and leaves slices lazy — v1
#: pickles lack the column attributes and would deserialize broken.
CACHE_VERSION = 2

_HEADER = struct.Struct("<4sHH32s")


@dataclass
class PlanStoreStats:
    """Hit/miss accounting for one :class:`PlanStore`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries rejected by validation (bad magic/version/digest,
    #: truncation, unpicklable payload) and regenerated.
    invalid: int = 0
    #: Orphaned ``*.plan.tmp.<pid>`` files reclaimed by the startup
    #: sweep — debris of writers that died between temp write and
    #: atomic rename.
    tmp_reclaimed: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
            "tmp_reclaimed": self.tmp_reclaimed,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class FsckReport:
    """What one :meth:`PlanStore.fsck` pass found (and repaired)."""

    #: Entry files examined.
    scanned: int = 0
    #: Entries that validated end-to-end (magic, version, digest,
    #: payload).
    valid: int = 0
    #: Entries that failed validation.
    corrupt: int = 0
    #: Corrupt entries moved to ``<root>/quarantine/`` (0 with
    #: ``repair=False``).
    quarantined: int = 0
    #: Orphaned temp files seen.
    tmp_seen: int = 0
    #: Orphaned temp files removed (0 with ``repair=False``).
    tmp_reclaimed: int = 0
    #: Total entry bytes read and verified.
    bytes_scanned: int = 0

    @property
    def clean(self) -> bool:
        """True when the store had nothing wrong (before repair)."""
        return self.corrupt == 0 and self.tmp_seen == 0

    def as_dict(self) -> dict:
        return {
            "scanned": self.scanned,
            "valid": self.valid,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "tmp_seen": self.tmp_seen,
            "tmp_reclaimed": self.tmp_reclaimed,
            "bytes_scanned": self.bytes_scanned,
            "clean": self.clean,
        }


def topology_token(topology: "Topology") -> str:
    """A canonical string identifying a topology for cache keying."""
    return (
        f"{topology.name}|{topology.sockets}x{topology.cores_per_socket}"
        f"|reserved={','.join(str(c) for c in topology.reserved_cores)}"
        f"|ghz={topology.frequency_ghz!r}"
    )


def plan_key(planner: "Planner", workload: Workload) -> str:
    """Content fingerprint of one planning request.

    Covers everything that can change the emitted table: the ordered
    vCPU census (order matters — EDF breaks ties by release sequence,
    exactly as the per-core memo's key does), the topology, and every
    planner knob the pipeline reads.  Two requests with equal keys
    produce bit-identical plans, so a stored entry may be substituted
    for a fresh ``planner.plan(...)`` call.
    """
    vcpus = _as_vcpus(workload)
    hasher = hashlib.sha256()
    hasher.update(f"store-v{CACHE_VERSION};".encode())
    hasher.update(topology_token(planner.topology).encode())
    hasher.update(
        (
            f";hp={planner.hyperperiod_ns};mp={planner.min_period_ns}"
            f";co={planner.coalesce_threshold_ns};pc={planner.min_piece_ns}"
            f";sl={planner.strict_latency};ph={planner.peephole}"
            f";sc={planner.split_compensation!r};rot={planner.rotation}"
            f";numa={planner.numa};policy={planner.policy!r};"
        ).encode()
    )
    for spec in vcpus:
        hasher.update(
            f"{spec.name},{spec.utilization!r},{spec.latency_ns},"
            f"{spec.capped},{spec.vm};".encode()
        )
    return hasher.hexdigest()


def shape_plan_key(planner: "Planner", workload: Workload) -> str:
    """Content fingerprint of a planning request's *shape*.

    Like :func:`plan_key` but keyed on the order-independent
    reservation multiset (:func:`repro.core.cache.census_signature`)
    instead of the exact named census.  Two censuses that differ only in
    VM names share a shape key, so a stored entry can be rebound
    (:func:`repro.core.cache.rebind_plan`) onto either — the on-disk
    counterpart of :class:`~repro.core.cache.TableCache`'s Sec. 7.1
    caching.  Under tenant churn exact names never repeat, which would
    make :func:`plan_key` entries write-only; shape keys are what keep
    a long-running control plane's store bounded and warm.
    """
    from repro.core.cache import census_signature

    vcpus = _as_vcpus(workload)
    hasher = hashlib.sha256()
    hasher.update(f"store-shape-v{CACHE_VERSION};".encode())
    hasher.update(topology_token(planner.topology).encode())
    hasher.update(
        (
            f";hp={planner.hyperperiod_ns};mp={planner.min_period_ns}"
            f";co={planner.coalesce_threshold_ns};pc={planner.min_piece_ns}"
            f";sl={planner.strict_latency};ph={planner.peephole}"
            f";sc={planner.split_compensation!r};rot={planner.rotation}"
            f";numa={planner.numa};policy={planner.policy!r};"
        ).encode()
    )
    for ppm, latency_ns, capped in census_signature(vcpus):
        hasher.update(f"{ppm},{latency_ns},{capped};".encode())
    return hasher.hexdigest()


class PlanStore:
    """A content-addressed, crash-tolerant plan cache rooted at ``root``.

    Args:
        root: Cache directory (created on first write).  Entries live
            under ``<root>/v<CACHE_VERSION>/<key[:2]>/<key>.plan``.
        version: Entry format version to read/write (tests override to
            exercise the mismatch path).
        sweep: Reclaim orphaned ``*.plan.tmp.<pid>`` files on open (a
            bounded scan — see :meth:`_sweep_orphans`).  ``fsck``
            harnesses pass ``False`` to observe debris instead of
            silently cleaning it.
    """

    #: Startup-sweep bound: opening a store must stay O(1)-ish even on
    #: a pathologically littered tree; anything beyond this many temp
    #: files is left for an explicit :meth:`fsck`.
    SWEEP_LIMIT = 256

    def __init__(
        self,
        root: Union[str, Path],
        version: int = CACHE_VERSION,
        sweep: bool = True,
    ) -> None:
        self.root = Path(root)
        self.version = version
        self.stats = PlanStoreStats()
        if sweep:
            self.stats.tmp_reclaimed = self._sweep_orphans()

    # ------------------------------------------------------------------
    # Path layout
    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"v{CACHE_VERSION}" / key[:2] / f"{key}.plan"

    def __len__(self) -> int:
        base = self.root / f"v{CACHE_VERSION}"
        if not base.is_dir():
            return 0
        return sum(1 for _ in base.glob("*/*.plan"))

    # ------------------------------------------------------------------
    # Entry I/O
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional["PlanResult"]:
        """The stored plan for ``key``, or ``None`` (miss or invalid).

        Never raises on a bad entry: any validation failure counts as
        ``invalid``, removes the file best-effort, and reads as a miss
        so the caller transparently regenerates.
        """
        path = self.path_for(key)
        try:
            payload = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        result = self._decode(payload)
        if result is None:
            self.stats.misses += 1
            self.stats.invalid += 1
            self._discard(path)
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: "PlanResult") -> Path:
        """Persist ``result`` under ``key`` atomically; returns the path.

        Goes through :func:`repro.core.atomicio.atomic_write_bytes`
        (per-writer temp file, atomic ``os.replace``), consulting the
        ``plancache.write.pre-rename`` crashpoint in the window where a
        dying writer orphans its temp file — the debris the startup
        sweep and :meth:`fsck` exist to reclaim.
        """
        path = self.path_for(key)
        body = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        header = _HEADER.pack(
            MAGIC, self.version, 0, hashlib.sha256(body).digest()
        )
        atomic_write_bytes(
            path, header + body, crash_point=CRASH_PLANCACHE_PRE_RENAME
        )
        self.stats.stores += 1
        return path

    def _decode(self, payload: bytes) -> Optional["PlanResult"]:
        """Validate and unpickle one entry; ``None`` on any defect."""
        if len(payload) < _HEADER.size:
            return None
        magic, version, _reserved, digest = _HEADER.unpack_from(payload)
        if magic != MAGIC or version != self.version:
            return None
        body = payload[_HEADER.size :]
        if hashlib.sha256(body).digest() != digest:
            return None
        try:
            result = pickle.loads(body)
        except Exception:
            # Defensive: a digest collision with garbage is effectively
            # impossible, but a payload pickled by an incompatible code
            # version can still fail to load; treat it as invalid.
            return None
        from repro.core.planner import PlanResult

        if not isinstance(result, PlanResult):
            return None
        return result

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            # Best-effort cleanup; a lingering bad entry just re-reads
            # as invalid next time.
            return

    # ------------------------------------------------------------------
    # Crash debris: orphan sweep and fsck
    # ------------------------------------------------------------------

    @staticmethod
    def _orphaned(tmp: Path) -> bool:
        """Is this ``*.plan.tmp.<pid>`` file reclaimable debris?

        Our own pid's temp files are always debris at sweep time (no
        write is in flight while the store is being *opened*).  Another
        pid's are debris once that process is gone; an unparsable
        suffix never named a live writer.  Only a live foreign pid —
        possibly mid-write — is left alone.
        """
        suffix = tmp.name.rsplit(".", 1)[-1]
        try:
            pid = int(suffix)
        except ValueError:
            return True
        if pid == os.getpid():
            return True
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True  # no such process: a dead writer's orphan
        except PermissionError:
            return False  # alive, just not ours to signal
        except OSError:
            return False
        return False  # alive

    def _iter_tmp_files(self, limit: Optional[int]) -> "list[Path]":
        if not self.root.is_dir():
            return []
        found = self.root.rglob("*.plan.tmp.*")
        if limit is not None:
            found = itertools.islice(found, limit)  # type: ignore[assignment]
        return sorted(found)

    def _sweep_orphans(self) -> int:
        """Reclaim orphaned temp files left by crashed writers.

        Bounded by :attr:`SWEEP_LIMIT` so opening a store stays cheap;
        a tree littered beyond the bound is an :meth:`fsck` job.
        Returns the number of files removed.
        """
        reclaimed = 0
        for tmp in self._iter_tmp_files(self.SWEEP_LIMIT):
            if self._orphaned(tmp):
                try:
                    tmp.unlink()
                except OSError:
                    continue
                reclaimed += 1
        return reclaimed

    def fsck(self, repair: bool = True) -> FsckReport:
        """Scan every entry, verify it end-to-end, repair the damage.

        * Each ``*.plan`` file is read fully and validated exactly as
          :meth:`get` would (magic, version, digest, pickle, type); a
          failing entry is **quarantined** — moved to
          ``<root>/quarantine/<name>`` — rather than deleted, so a
          corruption bug stays diagnosable.
        * Every orphaned temp file (unbounded scan, unlike the startup
          sweep) is removed.

        With ``repair=False`` nothing is touched; the report still
        counts what *would* be repaired.  Reclaimed temp files are also
        added to ``stats.tmp_reclaimed``.
        """
        report = FsckReport()
        quarantine = self.root / "quarantine"
        base = self.root / f"v{CACHE_VERSION}"
        entries = sorted(base.glob("*/*.plan")) if base.is_dir() else []
        for path in entries:
            try:
                payload = path.read_bytes()
            except OSError:
                continue
            report.scanned += 1
            report.bytes_scanned += len(payload)
            if self._decode(payload) is not None:
                report.valid += 1
                continue
            report.corrupt += 1
            if repair:
                quarantine.mkdir(parents=True, exist_ok=True)
                try:
                    path.replace(quarantine / path.name)
                except OSError:
                    continue
                report.quarantined += 1
        for tmp in self._iter_tmp_files(None):
            if not self._orphaned(tmp):
                continue
            report.tmp_seen += 1
            if repair:
                try:
                    tmp.unlink()
                except OSError:
                    continue
                report.tmp_reclaimed += 1
        self.stats.tmp_reclaimed += report.tmp_reclaimed
        return report

    # ------------------------------------------------------------------
    # The get-or-plan convenience the experiments and campaigns use
    # ------------------------------------------------------------------

    def plan(self, planner: "Planner", workload: Workload) -> "PlanResult":
        """Plan ``workload`` with ``planner``, reusing a stored result.

        On a hit the returned plan's ``stats.plan_cache_hit`` is True
        and no planner work runs; on a miss the fresh result is stored
        before being returned (with ``plan_cache_hit`` False).
        """
        vcpus = _as_vcpus(workload)
        key = plan_key(planner, vcpus)
        cached = self.get(key)
        if cached is not None:
            cached.stats.plan_cache_hit = True
            return cached
        result = planner.plan(list(vcpus))
        result.stats.plan_cache_hit = False
        self.put(key, result)
        return result

    def plan_shaped(self, planner: "Planner", workload: Workload) -> "PlanResult":
        """Plan ``workload``, reusing any stored *same-shape* result.

        Keys on :func:`shape_plan_key`, so a hit may carry different VM
        names than the request: the stored plan is rebound onto the
        requested census with
        :func:`repro.core.cache.rebind_plan` (an O(table) rename — no
        planner work).  This is the lookup long-running control planes
        use: under create/destroy churn the shape space is small and
        revisited while the name space grows without bound.
        """
        from repro.core.cache import rebind_plan

        vcpus = _as_vcpus(workload)
        key = shape_plan_key(planner, vcpus)
        cached = self.get(key)
        if cached is not None:
            result = rebind_plan(cached, vcpus)
            result.stats.plan_cache_hit = True
            return result
        result = planner.plan(list(vcpus))
        result.stats.plan_cache_hit = False
        self.put(key, result)
        return result
