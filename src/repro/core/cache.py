"""Table cache for recurring VM configurations.

Sec. 7.1: "it is trivially possible to centrally cache tables for common
configurations that are frequently reused."  In a cloud offering a small
set of regularly sized service tiers, most planner invocations see a
census that differs from a previous one only in VM *names* — the
(utilization, latency, capped) multiset is identical.  This cache keys
on that multiset (plus the topology) and rebinds the cached table's
allocations to the new names, reducing a replan to a dictionary lookup
plus an O(table) rename.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.params import VCpuSpec
from repro.core.planner import PlanResult, Planner
from repro.core.table import Allocation, CoreTable, SystemTable

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.plancache import PlanStore

#: Reservation signature: (utilization rounded to ppm, latency, capped).
_Signature = Tuple[Tuple[int, int, bool], ...]


def census_signature(vcpus: Sequence[VCpuSpec]) -> _Signature:
    """Order-independent fingerprint of a vCPU census."""
    return tuple(
        sorted(
            (round(v.utilization * 1_000_000), v.latency_ns, v.capped)
            for v in vcpus
        )
    )


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TableCache:
    """An LRU cache of plans keyed by census signature.

    Args:
        planner: The planner used on cache misses.
        capacity: Maximum cached configurations.
        store: Optional on-disk :class:`~repro.core.plancache.PlanStore`
            consulted (by shape key) on in-memory misses and populated
            with fresh plans — a persistent second cache level, so a
            restarted control plane or a sibling process starts warm.
    """

    def __init__(
        self,
        planner: Planner,
        capacity: int = 64,
        store: Optional["PlanStore"] = None,
    ) -> None:
        self.planner = planner
        self.capacity = capacity
        self.store = store
        self.stats = CacheStats()
        self._entries: "OrderedDict[_Signature, PlanResult]" = OrderedDict()

    def plan(self, vcpus: Sequence[VCpuSpec]) -> PlanResult:
        """Plan for ``vcpus``, reusing a cached same-shape table if any."""
        signature = census_signature(vcpus)
        cached = self._entries.get(signature)
        if cached is not None:
            self._entries.move_to_end(signature)
            self.stats.hits += 1
            return rebind_plan(cached, vcpus)
        self.stats.misses += 1
        if self.store is not None:
            result = self.store.plan_shaped(self.planner, vcpus)
        else:
            result = self.planner.plan(list(vcpus))
        self._entries[signature] = result
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return result

    def __len__(self) -> int:
        return len(self._entries)


def rebind_plan(cached: PlanResult, vcpus: Sequence[VCpuSpec]) -> PlanResult:
    """Rename a cached plan's vCPUs onto a same-shape census.

    Matching is by reservation signature: each new vCPU takes over the
    slots of a cached vCPU with identical (utilization, latency, capped).
    The returned plan shares no mutable state with the cached one.
    """
    # Group cached vCPU names by their reservation signature.
    pools: Dict[Tuple[int, int, bool], List[str]] = {}
    for name, spec in cached.vcpus.items():
        key = (round(spec.utilization * 1_000_000), spec.latency_ns, spec.capped)
        pools.setdefault(key, []).append(name)
    for names in pools.values():
        names.sort()

    rename: Dict[str, str] = {}
    new_specs: Dict[str, VCpuSpec] = {}
    for vcpu in sorted(vcpus, key=lambda v: v.name):
        key = (round(vcpu.utilization * 1_000_000), vcpu.latency_ns, vcpu.capped)
        old_name = pools[key].pop()
        rename[old_name] = vcpu.name
        new_specs[vcpu.name] = vcpu

    cores: Dict[int, CoreTable] = {}
    for cpu, table in cached.table.cores.items():
        renamed = CoreTable(
            cpu=cpu,
            length_ns=table.length_ns,
            allocations=[
                Allocation(
                    a.start,
                    a.end,
                    rename[a.vcpu] if a.vcpu is not None else None,
                )
                for a in table.allocations
            ],
        )
        cores[cpu] = renamed
    system = SystemTable(length_ns=cached.table.length_ns, cores=cores)
    system.build_slices()

    tasks = {
        rename[name]: task.__class__(
            name=rename[name],
            cost=task.cost,
            period=task.period,
            deadline=task.deadline,
            offset=task.offset,
            vcpu=new_specs[rename[name]],
        )
        for name, task in cached.tasks.items()
    }
    assignment = {
        core: [tasks[rename[t.name.split("#")[0]]] for t in ts]
        for core, ts in cached.assignment.items()
        if core != "__cluster__"
    }
    return PlanResult(
        table=system,
        tasks=tasks,
        vcpus=new_specs,
        assignment=assignment,
        admission=cached.admission,
        stats=cached.stats,
    )
