"""Tableau's planner core: reservations, real-time theory, tables.

This package implements the paper's primary contribution — on-demand
generation of cyclic scheduling tables satisfying per-vCPU utilization
and scheduling-latency guarantees — together with the real-time
scheduling substrate it relies on (the role SchedCAT played for the
original prototype).

Typical use::

    from repro.core import Planner, make_vm
    from repro.topology import xeon_16core

    vms = [make_vm(f"vm{i}", utilization=0.25, latency_ns=20_000_000)
           for i in range(48)]
    result = Planner(xeon_16core()).plan(vms)
    result.table.max_blackout_ns("vm0.vcpu0")  # <= 20 ms, guaranteed
"""

from repro.core.admission import AdmissionReport, admit_or_raise, check_admission
from repro.core.affinity import CoschedulingPolicy, constrained_worst_fit
from repro.core.atomicio import atomic_write_bytes, atomic_write_text
from repro.core.cache import CacheStats, TableCache, census_signature, rebind_plan
from repro.core.edf import preemption_count, simulate_edf
from repro.core.numa import NumaReport, numa_worst_fit
from repro.core.optimal import dp_wrap_schedule, grow_cluster
from repro.core.params import (
    DEFAULT_TIERS,
    MS,
    SEC,
    US,
    CoreId,
    DomainId,
    Nanoseconds,
    ServiceTier,
    VCpuSpec,
    VMSpec,
    fair_share_specs,
    flatten_vcpus,
    make_vm,
    seconds_to_ns,
    vms_from_tiers,
)
from repro.core.partition import (
    PartitionResult,
    first_fit_decreasing,
    worst_fit_decreasing,
)
from repro.core.peephole import PeepholeReport, optimize_core
from repro.core.plancache import (
    CACHE_VERSION,
    FsckReport,
    PlanStore,
    PlanStoreStats,
    plan_key,
    shape_plan_key,
    topology_token,
)
from repro.core.periods import (
    HYPERPERIOD_NS,
    MIN_PERIOD_NS,
    achievable_latency_ns,
    all_divisors,
    candidate_periods,
    max_blackout_ns,
    select_period,
)
from repro.core.planner import (
    METHOD_CLUSTERED,
    METHOD_PARTITIONED,
    METHOD_SEMI_PARTITIONED,
    CensusDelta,
    Planner,
    PlanResult,
    PlanStats,
    plan_tables,
)
from repro.core.postprocess import CoalesceReport, coalesce, idle_intervals
from repro.core.schedulability import (
    demand_bound,
    edf_schedulable,
    max_cd_piece,
    qpa_schedulable,
)
from repro.core.serialize import (
    deserialize,
    deserialize_arrays,
    serialize,
    serialize_arrays,
    table_size_bytes,
)
from repro.core.splitting import SemiPartitionResult, semi_partition, verify_chain
from repro.core.table import (
    Allocation,
    CoreTable,
    SystemTable,
    validate_against_tasks,
)
from repro.core.tasks import PeriodicTask, vcpu_to_task, vcpus_to_tasks

__all__ = [
    "AdmissionReport",
    "CACHE_VERSION",
    "CacheStats",
    "FsckReport",
    "PlanStore",
    "PlanStoreStats",
    "atomic_write_bytes",
    "atomic_write_text",
    "plan_key",
    "topology_token",
    "CoschedulingPolicy",
    "PeepholeReport",
    "TableCache",
    "census_signature",
    "constrained_worst_fit",
    "optimize_core",
    "rebind_plan",
    "Allocation",
    "CensusDelta",
    "CoalesceReport",
    "CoreTable",
    "DEFAULT_TIERS",
    "HYPERPERIOD_NS",
    "METHOD_CLUSTERED",
    "METHOD_PARTITIONED",
    "METHOD_SEMI_PARTITIONED",
    "MIN_PERIOD_NS",
    "MS",
    "CoreId",
    "DomainId",
    "Nanoseconds",
    "PartitionResult",
    "PeriodicTask",
    "PlanResult",
    "PlanStats",
    "Planner",
    "SEC",
    "SemiPartitionResult",
    "ServiceTier",
    "SystemTable",
    "US",
    "VCpuSpec",
    "VMSpec",
    "achievable_latency_ns",
    "admit_or_raise",
    "all_divisors",
    "candidate_periods",
    "check_admission",
    "coalesce",
    "demand_bound",
    "deserialize",
    "deserialize_arrays",
    "dp_wrap_schedule",
    "edf_schedulable",
    "fair_share_specs",
    "first_fit_decreasing",
    "flatten_vcpus",
    "grow_cluster",
    "idle_intervals",
    "make_vm",
    "max_blackout_ns",
    "max_cd_piece",
    "plan_tables",
    "preemption_count",
    "qpa_schedulable",
    "seconds_to_ns",
    "shape_plan_key",
    "NumaReport",
    "numa_worst_fit",
    "select_period",
    "semi_partition",
    "serialize",
    "serialize_arrays",
    "simulate_edf",
    "table_size_bytes",
    "validate_against_tasks",
    "vcpu_to_task",
    "vcpus_to_tasks",
    "verify_chain",
    "vms_from_tiers",
    "worst_fit_decreasing",
]
