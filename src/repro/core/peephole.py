"""Peephole optimization pass for scheduling tables.

Sec. 5 ("Post-processing"): "one might add a 'peep-hole' optimization
pass to reduce the number of migrations and preemptions even further."
This module implements that pass.  EDF is throughput-optimal but
preemption-happy: a job interrupted by an earlier-deadline release ends
up split across two allocations, costing two context switches at
runtime.

The optimizer walks each core's table looking for *swap* opportunities:
two adjacent allocations A, B where exchanging their order glues one of
them to a neighbouring allocation of the same vCPU.  Every candidate is
applied tentatively and the whole table is re-validated against the
task set (ground truth: every job still receives its full budget by its
deadline); invalid swaps are rolled back.  The pass iterates until no
swap helps, so the result is locally optimal and *provably* still
correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.edf import preemption_count
from repro.core.table import Allocation, CoreTable, validate_against_tasks
from repro.core.tasks import PeriodicTask
from repro.errors import PlanningError


@dataclass
class PeepholeReport:
    """Outcome of one peephole run."""

    swaps_applied: int
    swaps_rejected: int
    preemptions_before: int
    preemptions_after: int

    @property
    def preemptions_removed(self) -> int:
        return self.preemptions_before - self.preemptions_after


def _swap_adjacent(
    allocations: Sequence[Allocation], index: int
) -> List[Allocation]:
    """Swap allocations ``index`` and ``index + 1`` in time.

    The two stay back-to-back, so only their order (and hence their
    start/end offsets) changes; everything else is untouched.
    """
    first = allocations[index]
    second = allocations[index + 1]
    if first.end != second.start:
        raise PlanningError("can only swap contiguous allocations")
    new_first = Allocation(first.start, first.start + second.length, second.vcpu)
    new_second = Allocation(new_first.end, second.end, first.vcpu)
    result = list(allocations)
    result[index] = new_first
    result[index + 1] = new_second
    return result


def _merges_with_neighbour(
    allocations: Sequence[Allocation], index: int
) -> bool:
    """Would swapping ``index``/``index+1`` glue same-vCPU allocations?"""
    first = allocations[index]
    second = allocations[index + 1]
    if first.vcpu == second.vcpu or first.end != second.start:
        return False
    before = allocations[index - 1] if index > 0 else None
    after = allocations[index + 2] if index + 2 < len(allocations) else None
    # After the swap: [... before][second][first][after ...]
    glues_left = (
        before is not None
        and before.vcpu == second.vcpu
        and before.end == first.start
    )
    glues_right = (
        after is not None
        and after.vcpu == first.vcpu
        and after.start == second.end
    )
    return glues_left or glues_right


def optimize_core(
    table: CoreTable,
    tasks: Sequence[PeriodicTask],
    max_passes: int = 8,
) -> Tuple[CoreTable, PeepholeReport]:
    """Reduce preemptions on one core without violating any deadline.

    ``tasks`` must be the periodic tasks this table was generated for
    (allocation vCPU names matching task names); validation uses them as
    ground truth after every tentative swap.
    """
    before = preemption_count(table, tasks)
    current = list(table.allocations)
    applied = 0
    rejected = 0

    for _ in range(max_passes):
        changed = False
        for index in range(len(current) - 1):
            if not _merges_with_neighbour(current, index):
                continue
            candidate_allocs = _swap_adjacent(current, index)
            candidate = CoreTable(
                cpu=table.cpu,
                length_ns=table.length_ns,
                allocations=_coalesce_same_vcpu(candidate_allocs),
            )
            try:
                candidate.validate_layout()
                validate_against_tasks(candidate, tasks)
            except PlanningError:
                rejected += 1
                continue
            current = list(candidate.allocations)
            applied += 1
            changed = True
            break  # indices shifted; restart the scan
        if not changed:
            break

    optimized = CoreTable(
        cpu=table.cpu, length_ns=table.length_ns, allocations=current
    )
    optimized.validate_layout()
    after = preemption_count(optimized, tasks)
    return optimized, PeepholeReport(
        swaps_applied=applied,
        swaps_rejected=rejected,
        preemptions_before=before,
        preemptions_after=after,
    )


def _coalesce_same_vcpu(allocations: Sequence[Allocation]) -> List[Allocation]:
    merged: List[Allocation] = []
    for alloc in allocations:
        if merged and merged[-1].vcpu == alloc.vcpu and merged[-1].end == alloc.start:
            merged[-1] = Allocation(merged[-1].start, alloc.end, alloc.vcpu)
        else:
            merged.append(alloc)
    return merged
