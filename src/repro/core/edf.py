"""Per-core EDF schedule simulation: periodic tasks -> a cyclic table.

Once tasks are partitioned onto cores, the planner simply *simulates* an
earliest-deadline-first schedule on each core until the hyperperiod
(Sec. 5).  EDF is optimal on uniprocessors, so if the core's task set
passed the schedulability test, the simulation yields a repeating table
satisfying every utilization and latency goal by construction.

The simulation is event-driven: scheduling decisions happen only at job
releases and completions, so its cost is proportional to the number of
jobs in one hyperperiod rather than to the hyperperiod length.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.table import Allocation, CoreTable
from repro.core.tasks import PeriodicTask
from repro.errors import ConfigurationError, PlanningError


@dataclass
class _Job:
    """One released, unfinished job inside the simulation."""

    deadline: int
    seq: int
    task_index: int
    remaining: int

    def sort_key(self) -> Tuple[int, int]:
        # Ties broken by release order for determinism.
        return (self.deadline, self.seq)


def simulate_edf(
    tasks: Sequence[PeriodicTask],
    horizon: int,
    cpu: int = 0,
) -> CoreTable:
    """Simulate EDF over ``[0, horizon)`` and return the resulting table.

    ``horizon`` must be a common multiple of every task period so the
    schedule is cyclic (no job carries over the boundary: every job
    released in the window also has its deadline inside it).  A deadline
    miss raises :class:`PlanningError` — with correct admission and
    schedulability tests upstream this indicates an internal bug, and the
    planner treats it as such.
    """
    for task in tasks:
        if horizon % task.period != 0:
            raise ConfigurationError(
                f"horizon {horizon} is not a multiple of {task.name}'s "
                f"period {task.period}"
            )

    # Pre-compute all releases: (release_time, task_index, deadline).
    releases: List[Tuple[int, int, int]] = []
    for index, task in enumerate(tasks):
        for k in range(horizon // task.period):
            release = k * task.period + task.offset
            releases.append((release, index, release + task.deadline))
    releases.sort()

    ready: List[Tuple[Tuple[int, int], _Job]] = []  # heap by (deadline, seq)
    segments: List[Tuple[int, int, int]] = []  # (start, end, task_index)
    now = 0
    release_index = 0
    seq = 0
    total_releases = len(releases)

    while release_index < total_releases or ready:
        # Admit all jobs released at or before `now`.
        while release_index < total_releases and releases[release_index][0] <= now:
            release, task_index, deadline = releases[release_index]
            release_index += 1
            job = _Job(deadline, seq, task_index, tasks[task_index].cost)
            seq += 1
            heapq.heappush(ready, (job.sort_key(), job))
        if not ready:
            # Idle until the next release.
            now = releases[release_index][0]
            continue
        _, job = ready[0]
        next_release = (
            releases[release_index][0] if release_index < total_releases else horizon
        )
        run_until = min(now + job.remaining, next_release)
        if run_until > now:
            segments.append((now, run_until, job.task_index))
        job.remaining -= run_until - now
        now = run_until
        if job.remaining == 0:
            heapq.heappop(ready)
            if now > job.deadline:
                raise PlanningError(
                    f"cpu{cpu}: {tasks[job.task_index].name} missed deadline "
                    f"{job.deadline} (completed {now})"
                )
        elif now >= job.deadline:
            raise PlanningError(
                f"cpu{cpu}: {tasks[job.task_index].name} cannot meet deadline "
                f"{job.deadline} ({job.remaining} ns left at {now})"
            )

    allocations = merge_segments(segments, [t.name for t in tasks])
    table = CoreTable(cpu=cpu, length_ns=horizon, allocations=allocations)
    table.validate_layout()
    return table


def merge_segments(
    segments: Sequence[Tuple[int, int, int]], names: Sequence[str]
) -> List[Allocation]:
    """Coalesce back-to-back segments of the same task into allocations."""
    allocations: List[Allocation] = []
    for start, end, task_index in segments:
        name = names[task_index]
        if (
            allocations
            and allocations[-1].vcpu == name
            and allocations[-1].end == start
        ):
            allocations[-1] = Allocation(allocations[-1].start, end, name)
        else:
            allocations.append(Allocation(start, end, name))
    return allocations


def preemption_count(table: CoreTable, tasks: Sequence[PeriodicTask]) -> int:
    """Number of preemptions in one table cycle (for ablation benchmarks).

    A preemption is counted whenever a task's job is split across
    non-contiguous allocations; fewer preemptions mean fewer context
    switches charged to tenants at runtime.
    """
    by_task: Dict[str, List[Tuple[int, int]]] = {}
    for alloc in table.allocations:
        if alloc.vcpu is not None:
            by_task.setdefault(alloc.vcpu, []).append((alloc.start, alloc.end))
    count = 0
    for task in tasks:
        intervals = by_task.get(task.name, [])
        for k in range(table.length_ns // task.period):
            release = k * task.period + task.offset
            deadline = release + task.deadline
            pieces = [
                (s, e) for s, e in intervals if s < deadline and e > release
            ]
            if len(pieces) > 1:
                count += len(pieces) - 1
    return count
