"""Candidate-period selection for the Tableau planner.

The planner maps each vCPU's latency goal to a periodic-task period.  To
keep the dispatching table short, periods are not chosen freely: they are
drawn from the set of integer divisors of a fixed *maximum hyperperiod*.
The paper (Sec. 5, "Bounding table lengths") picked 102,702,600 ns — a
number close to 100 ms with an unusually rich divisor structure — and
only considers divisors of at least 100 us, since shorter periods cannot
be enforced efficiently given context-switch overheads.  That yields 186
candidate periods.

This module reproduces that machinery exactly and also supports custom
hyperperiods (used by tests and by the ablation benchmarks that explore
the sensitivity of table length to the hyperperiod choice).
"""

from __future__ import annotations

from bisect import bisect_right
from functools import lru_cache
from typing import List, Sequence, Tuple

from repro.core.params import Nanoseconds
from repro.errors import ConfigurationError, LatencyInfeasibleError

#: Tableau's table length in nanoseconds (~102.7 ms), chosen for its 186
#: integer divisors above the 100 us enforceability threshold.
HYPERPERIOD_NS: Nanoseconds = Nanoseconds(102_702_600)

#: Minimum enforceable period (100 us).  Periods below this are excluded
#: because scheduling overheads make them impossible to enforce.
MIN_PERIOD_NS: Nanoseconds = Nanoseconds(100_000)


def factorize(n: int) -> List[Tuple[int, int]]:
    """Return the prime factorization of ``n`` as ``[(prime, exponent), ...]``.

    Trial division is entirely sufficient here: hyperperiod candidates are
    ~1e8 and factorization runs once per planner instantiation.
    """
    if n < 1:
        raise ConfigurationError(f"cannot factorize non-positive integer {n}")
    factors: List[Tuple[int, int]] = []
    remaining = n
    p = 2
    while p * p <= remaining:
        if remaining % p == 0:
            exponent = 0
            while remaining % p == 0:
                remaining //= p
                exponent += 1
            factors.append((p, exponent))
        p += 1 if p == 2 else 2
    if remaining > 1:
        factors.append((remaining, 1))
    return factors


def all_divisors(n: int) -> List[int]:
    """Return all positive divisors of ``n`` in ascending order."""
    divisors = [1]
    for prime, exponent in factorize(n):
        power = 1
        new: List[int] = []
        for _ in range(exponent):
            power *= prime
            new.extend(d * power for d in divisors)
        divisors.extend(new)
    return sorted(divisors)


@lru_cache(maxsize=16)
def candidate_periods(
    hyperperiod_ns: int = HYPERPERIOD_NS, min_period_ns: int = MIN_PERIOD_NS
) -> Tuple[int, ...]:
    """Return the ascending tuple of candidate periods.

    These are the divisors of ``hyperperiod_ns`` that are strictly greater
    than ``min_period_ns`` (the paper counts 186 such divisors for the
    default hyperperiod).
    """
    if hyperperiod_ns <= min_period_ns:
        raise ConfigurationError(
            f"hyperperiod {hyperperiod_ns} ns must exceed the minimum "
            f"period {min_period_ns} ns"
        )
    return tuple(d for d in all_divisors(hyperperiod_ns) if d > min_period_ns)


def max_blackout_ns(utilization: float, period_ns: int) -> float:
    """Worst-case blackout time of a periodic task: ``2 * (1 - U) * T``.

    A task with cost C and period T may be served at the very start of one
    period and the very end of the next, leaving a service gap of
    ``2 * (T - C)`` (Sec. 5, "Mapping to periodic tasks").
    """
    return 2.0 * (1.0 - utilization) * period_ns


def select_period(
    utilization: float,
    latency_ns: int,
    hyperperiod_ns: int = HYPERPERIOD_NS,
    min_period_ns: int = MIN_PERIOD_NS,
    strict: bool = True,
) -> int:
    """Pick the largest candidate period honouring a vCPU's latency goal.

    Returns the largest divisor ``T`` of the hyperperiod with
    ``2 * (1 - U) * T <= L``.  Larger periods mean fewer preemptions, so
    the maximum feasible candidate is always preferred.

    If even the smallest candidate period violates the latency goal the
    goal is infeasible; with ``strict=True`` (the default, matching the
    paper's admission behaviour) :class:`LatencyInfeasibleError` is
    raised, otherwise the smallest candidate is returned and the caller
    is expected to surface the degraded guarantee.
    """
    if not 0.0 < utilization <= 1.0:
        raise ConfigurationError(f"utilization {utilization} outside (0, 1]")
    if latency_ns <= 0:
        raise ConfigurationError(f"latency goal {latency_ns} ns must be positive")

    periods = candidate_periods(hyperperiod_ns, min_period_ns)
    if utilization >= 1.0:
        # A fully reserved vCPU gets a dedicated core and never blacks out;
        # any period works.  Use the hyperperiod itself for a 1-entry table.
        return hyperperiod_ns

    # 2*(1-U)*T <= L  <=>  T <= L / (2*(1-U))
    bound = latency_ns / (2.0 * (1.0 - utilization))
    index = bisect_right(periods, int(bound))
    if index == 0:
        if strict:
            raise LatencyInfeasibleError(
                f"latency goal {latency_ns} ns infeasible for U={utilization:.3f}: "
                f"even the minimum period {periods[0]} ns yields a worst-case "
                f"blackout of {max_blackout_ns(utilization, periods[0]):.0f} ns"
            )
        return periods[0]
    return periods[index - 1]


def achievable_latency_ns(
    utilization: float,
    hyperperiod_ns: int = HYPERPERIOD_NS,
    min_period_ns: int = MIN_PERIOD_NS,
) -> float:
    """Tightest latency goal satisfiable for a given utilization.

    Useful for admission-control front ends that want to report to the
    tenant what the platform can actually promise.
    """
    periods = candidate_periods(hyperperiod_ns, min_period_ns)
    return max_blackout_ns(utilization, periods[0])


def hyperperiod_of(periods: Sequence[int]) -> int:
    """Least common multiple of a set of periods.

    For periods drawn from :func:`candidate_periods` this always divides
    the configured maximum hyperperiod — the property that keeps Tableau's
    tables short.
    """
    from math import gcd

    lcm = 1
    for period in periods:
        lcm = lcm * period // gcd(lcm, period)
    return lcm
