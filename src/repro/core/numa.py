"""NUMA-aware partitioning (Sec. 8's complementary-work hook).

The paper lists "NUMA-aware scheduling techniques" among the extensions
Tableau's planning phase makes easy.  This pass implements the obvious
one: keep all vCPUs of one VM on a single socket so guest memory stays
local, while still spreading load worst-fit within each socket.

The algorithm assigns whole VMs to sockets worst-fit by VM utilization
(keeping sockets balanced), then runs ordinary worst-fit decreasing for
each socket's tasks over that socket's cores.  A VM too big for any one
socket's remaining capacity falls back to unconstrained placement (local
memory is a preference, schedulability a guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.partition import (
    UTILIZATION_EPSILON,
    PartitionResult,
    worst_fit_decreasing,
)
from repro.core.tasks import PeriodicTask
from repro.topology import Topology


@dataclass
class NumaReport:
    """Locality outcome of a NUMA-aware partitioning run."""

    vm_sockets: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def local_vms(self) -> List[str]:
        return [vm for vm, sockets in self.vm_sockets.items() if len(sockets) == 1]

    @property
    def remote_vms(self) -> List[str]:
        return [vm for vm, sockets in self.vm_sockets.items() if len(sockets) > 1]

    @property
    def locality_rate(self) -> float:
        if not self.vm_sockets:
            return 1.0
        return len(self.local_vms) / len(self.vm_sockets)


def _vm_of(task: PeriodicTask) -> str:
    if task.vcpu is not None:
        return task.vcpu.vm
    return task.name.split(".")[0]


def numa_worst_fit(
    tasks: Sequence[PeriodicTask],
    cores: Sequence[int],
    topology: Topology,
) -> Tuple[PartitionResult, NumaReport]:
    """Socket-local worst-fit-decreasing placement.

    Returns the partition plus a :class:`NumaReport` describing which
    VMs achieved single-socket locality.
    """
    core_sockets = {core: topology.socket_of(core) for core in cores}
    sockets = sorted(set(core_sockets.values()))
    socket_cores: Dict[int, List[int]] = {s: [] for s in sockets}
    for core in cores:
        socket_cores[core_sockets[core]].append(core)

    # Group tasks by VM, largest VMs first.
    vm_tasks: Dict[str, List[PeriodicTask]] = {}
    for task in tasks:
        vm_tasks.setdefault(_vm_of(task), []).append(task)
    vm_order = sorted(
        vm_tasks.items(),
        key=lambda item: (-sum(t.utilization for t in item[1]), item[0]),
    )

    socket_load: Dict[int, float] = {s: 0.0 for s in sockets}
    socket_capacity: Dict[int, float] = {
        s: float(len(socket_cores[s])) for s in sockets
    }
    per_socket: Dict[int, List[PeriodicTask]] = {s: [] for s in sockets}
    homeless: List[PeriodicTask] = []
    report = NumaReport()

    for vm, members in vm_order:
        demand = sum(t.utilization for t in members)
        candidates = [
            s
            for s in sockets
            if socket_load[s] + demand
            <= socket_capacity[s] + UTILIZATION_EPSILON
        ]
        if candidates:
            chosen = min(candidates, key=lambda s: (socket_load[s], s))
            per_socket[chosen].extend(members)
            socket_load[chosen] += demand
            report.vm_sockets[vm] = [chosen]
        else:
            homeless.extend(members)

    assignment: Dict[int, List[PeriodicTask]] = {core: [] for core in cores}
    unassigned: List[PeriodicTask] = []
    for socket in sockets:
        local = worst_fit_decreasing(per_socket[socket], socket_cores[socket])
        for core, ts in local.assignment.items():
            assignment[core].extend(ts)
        unassigned.extend(local.unassigned)

    if homeless or unassigned:
        # Fallback: place the leftovers anywhere there is room (locality
        # is best-effort; capacity is not).
        leftovers = homeless + unassigned
        loads = {
            core: sum(t.utilization for t in ts)
            for core, ts in assignment.items()
        }
        fallback_unassigned: List[PeriodicTask] = []
        for task in sorted(leftovers, key=lambda t: (-t.utilization, t.name)):
            best: Optional[int] = None
            for core in cores:
                if loads[core] + task.utilization <= 1.0 + UTILIZATION_EPSILON:
                    if best is None or loads[core] < loads[best]:
                        best = core
            if best is None:
                fallback_unassigned.append(task)
            else:
                assignment[best].append(task)
                loads[best] += task.utilization
                vm = _vm_of(task)
                sockets_used = report.vm_sockets.setdefault(vm, [])
                socket = core_sockets[best]
                if socket not in sockets_used:
                    sockets_used.append(socket)
        unassigned = fallback_unassigned
    return PartitionResult(assignment=assignment, unassigned=unassigned), report
