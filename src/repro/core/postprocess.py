"""Table post-processing: allocation coalescing and related passes.

After a schedule is found the planner cleans it up before handing it to
the dispatcher (Sec. 5, "Post-processing"):

* back-to-back allocations of the same vCPU are merged (they arise
  whenever EDF runs consecutive jobs of one task without a gap);
* allocations shorter than the enforcement threshold — determined by
  context-switch overheads — are coalesced into a neighbouring
  allocation, since the dispatcher cannot usefully enforce them anyway.

Coalescing can transfer a few microseconds of budget between vCPUs; the
pass returns an exact account of what moved so the planner can validate
the table with a matching tolerance and callers can inspect the drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.table import Allocation, CoreTable

#: Default enforcement threshold (ns): allocations shorter than this are
#: merged away.  10 us comfortably exceeds a context switch plus timer
#: reprogramming on server-class hardware.
DEFAULT_COALESCE_NS = 10_000


@dataclass
class CoalesceReport:
    """Budget moved by coalescing, per vCPU (ns lost / gained per cycle)."""

    lost_ns: Dict[str, int] = field(default_factory=dict)
    gained_ns: Dict[str, int] = field(default_factory=dict)
    merged_count: int = 0
    dropped_count: int = 0

    def record_transfer(self, loser: str, gainer: Optional[str], amount: int) -> None:
        self.lost_ns[loser] = self.lost_ns.get(loser, 0) + amount
        if gainer is not None:
            self.gained_ns[gainer] = self.gained_ns.get(gainer, 0) + amount

    @property
    def max_lost_ns(self) -> int:
        return max(self.lost_ns.values(), default=0)

    def merge(self, other: "CoalesceReport") -> None:
        for vcpu, amount in other.lost_ns.items():
            self.lost_ns[vcpu] = self.lost_ns.get(vcpu, 0) + amount
        for vcpu, amount in other.gained_ns.items():
            self.gained_ns[vcpu] = self.gained_ns.get(vcpu, 0) + amount
        self.merged_count += other.merged_count
        self.dropped_count += other.dropped_count


def merge_adjacent(allocations: List[Allocation]) -> Tuple[List[Allocation], int]:
    """Merge touching allocations of the same vCPU; returns (result, merges)."""
    merged: List[Allocation] = []
    merges = 0
    for alloc in allocations:
        if (
            merged
            and merged[-1].vcpu == alloc.vcpu
            and merged[-1].end == alloc.start
        ):
            merged[-1] = Allocation(merged[-1].start, alloc.end, alloc.vcpu)
            merges += 1
        else:
            merged.append(alloc)
    return merged, merges


def coalesce(
    table: CoreTable, threshold_ns: int = DEFAULT_COALESCE_NS
) -> Tuple[CoreTable, CoalesceReport]:
    """Remove sub-threshold allocations by donating them to a neighbour.

    A short allocation contiguous with a neighbour is absorbed into it
    (the neighbour's vCPU gains the time).  Same-vCPU neighbours are
    preferred so no budget actually moves.  An isolated short allocation
    — no touching neighbour on either side — becomes idle time, which
    only ever *helps* other vCPUs via the second-level scheduler.

    The pass iterates to a fixed point because a merge can make two
    same-vCPU allocations adjacent, enabling further merging.
    """
    report = CoalesceReport()
    allocations = list(table.allocations)
    changed = True
    while changed:
        changed = False
        allocations, merges = merge_adjacent(allocations)
        report.merged_count += merges
        for index, alloc in enumerate(allocations):
            if alloc.length >= threshold_ns:
                continue
            previous = allocations[index - 1] if index > 0 else None
            following = (
                allocations[index + 1] if index + 1 < len(allocations) else None
            )
            prev_touches = previous is not None and previous.end == alloc.start
            next_touches = following is not None and following.start == alloc.end

            if prev_touches and previous.vcpu == alloc.vcpu:
                allocations[index - 1] = Allocation(
                    previous.start, alloc.end, previous.vcpu
                )
            elif next_touches and following.vcpu == alloc.vcpu:
                allocations[index + 1] = Allocation(
                    alloc.start, following.end, following.vcpu
                )
            elif prev_touches and next_touches:
                # Donate to the longer neighbour (least relative impact).
                if previous.length >= following.length:
                    allocations[index - 1] = Allocation(
                        previous.start, alloc.end, previous.vcpu
                    )
                    report.record_transfer(alloc.vcpu, previous.vcpu, alloc.length)
                else:
                    allocations[index + 1] = Allocation(
                        alloc.start, following.end, following.vcpu
                    )
                    report.record_transfer(alloc.vcpu, following.vcpu, alloc.length)
            elif prev_touches:
                allocations[index - 1] = Allocation(
                    previous.start, alloc.end, previous.vcpu
                )
                report.record_transfer(alloc.vcpu, previous.vcpu, alloc.length)
            elif next_touches:
                allocations[index + 1] = Allocation(
                    alloc.start, following.end, following.vcpu
                )
                report.record_transfer(alloc.vcpu, following.vcpu, alloc.length)
            else:
                report.record_transfer(alloc.vcpu, None, alloc.length)
                report.dropped_count += 1
            del allocations[index]
            changed = True
            break  # restart the scan on the mutated list

    result = CoreTable(cpu=table.cpu, length_ns=table.length_ns, allocations=allocations)
    result.validate_layout()
    return result, report


def idle_intervals(table: CoreTable) -> List[Tuple[int, int]]:
    """Gaps between allocations (plus leading/trailing idle), time-ordered.

    Used by analysis tooling and the second-level scheduler model to
    reason about spare capacity on a core.
    """
    gaps: List[Tuple[int, int]] = []
    cursor = 0
    for alloc in table.allocations:
        if alloc.start > cursor:
            gaps.append((cursor, alloc.start))
        cursor = alloc.end
    if cursor < table.length_ns:
        gaps.append((cursor, table.length_ns))
    return gaps
