"""Binary scheduling-table format (the planner -> hypervisor ABI).

The real Tableau planner pushes tables to the hypervisor via a hypercall
"in a compiled, binary format ... used directly by the Tableau
dispatcher" (Sec. 6).  This module defines an equivalent format and is
what the Fig. 4 memory-overhead benchmark measures.

Layout (little-endian):

    header    : magic 'TBLO' | version u16 | ncpus u16 | length u64
                | nvcpus u32 | reserved u32                      (24 B)
    string tbl: nvcpus x (u16 len | utf-8 bytes)
    per cpu   : cpu u32 | nallocs u32 | slice_len u64
                | nslices u32 | reserved u32                     (24 B)
      allocs  : start u64 | end u64 | vcpu i32 | flags u32 | pad (32 B)
      slices  : first i32 | second i32                            (8 B)

Allocation records are padded to 32 bytes so that two records share a
64-byte cache line — the dispatcher touches at most two records (one
slice entry plus up to two allocations) per decision, i.e., at most two
cache lines, matching the paper's O(1)-dispatch design.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Dict, List, Tuple

from repro.core.table import Allocation, CoreTable, SystemTable
from repro.errors import TableFormatError

MAGIC = b"TBLO"
VERSION = 1

#: Magic of the structure-of-arrays payload (:func:`serialize_arrays`).
ARRAY_MAGIC = b"TBLA"
ARRAY_VERSION = 1

#: Magic of the delta payload (:func:`serialize_delta`): only the cores
#: that changed since a known base table travel, as raw segment columns.
DELTA_MAGIC = b"TBLD"
DELTA_VERSION = 1

_HEADER = struct.Struct("<4sHHQII")
_CPU_HEADER = struct.Struct("<IIQII")
_ALLOC = struct.Struct("<QQiI8x")
_SLICE = struct.Struct("<ii")
_ARRAY_CPU_HEADER = struct.Struct("<II")

#: Flags stored per allocation record.
FLAG_IDLE = 0x1


def serialize(table: SystemTable) -> bytes:
    """Encode a system table into the binary hypercall payload."""
    if not table.vcpu_names and any(
        a.vcpu is not None
        for core in table.cores.values()
        for a in core.allocations
    ):
        raise TableFormatError("system table has allocations but no vCPU index")
    vcpu_ids: Dict[str, int] = {
        name: index for index, name in enumerate(table.vcpu_names)
    }
    chunks: List[bytes] = [
        _HEADER.pack(
            MAGIC, VERSION, len(table.cores), table.length_ns, len(vcpu_ids), 0
        )
    ]
    for name in table.vcpu_names:
        encoded = name.encode("utf-8")
        chunks.append(struct.pack("<H", len(encoded)))
        chunks.append(encoded)
    for cpu in sorted(table.cores):
        core = table.cores[cpu]
        if not core.slices:
            core.build_slices()
        chunks.append(
            _CPU_HEADER.pack(
                cpu, len(core.allocations), core.slice_len_ns, len(core.slices), 0
            )
        )
        for alloc in core.allocations:
            if alloc.vcpu is None:
                chunks.append(_ALLOC.pack(alloc.start, alloc.end, -1, FLAG_IDLE))
            else:
                chunks.append(
                    _ALLOC.pack(alloc.start, alloc.end, vcpu_ids[alloc.vcpu], 0)
                )
        for first, second in core.slices:
            chunks.append(_SLICE.pack(first, second))
    return b"".join(chunks)


def deserialize(payload: bytes) -> SystemTable:
    """Decode a binary payload back into a :class:`SystemTable`.

    Raises :class:`TableFormatError` on a bad magic number, version
    mismatch, or truncated payload — the checks the hypervisor side of
    the hypercall performs before installing a table.
    """
    view = memoryview(payload)
    offset = 0

    def take(fmt: struct.Struct) -> Tuple:
        nonlocal offset
        if offset + fmt.size > len(view):
            raise TableFormatError(
                f"truncated table: need {fmt.size} bytes at offset {offset}"
            )
        values = fmt.unpack_from(view, offset)
        offset += fmt.size
        return values

    magic, version, ncpus, length_ns, nvcpus, _ = take(_HEADER)
    if magic != MAGIC:
        raise TableFormatError(f"bad magic {magic!r}")
    if version != VERSION:
        raise TableFormatError(f"unsupported table version {version}")

    names: List[str] = []
    for _ in range(nvcpus):
        if offset + 2 > len(view):
            raise TableFormatError("truncated vCPU string table header")
        (name_len,) = struct.unpack_from("<H", view, offset)
        offset += 2
        if offset + name_len > len(view):
            raise TableFormatError("truncated vCPU string table")
        try:
            names.append(bytes(view[offset : offset + name_len]).decode("utf-8"))
        except UnicodeDecodeError as error:
            raise TableFormatError(f"corrupt vCPU name: {error}") from None
        offset += name_len

    cores: Dict[int, CoreTable] = {}
    for _ in range(ncpus):
        cpu, nallocs, slice_len, nslices, _ = take(_CPU_HEADER)
        allocations: List[Allocation] = []
        for _ in range(nallocs):
            start, end, vcpu_id, flags = take(_ALLOC)
            if flags & FLAG_IDLE or vcpu_id < 0:
                allocations.append(Allocation(start, end, None))
            else:
                if vcpu_id >= len(names):
                    raise TableFormatError(f"vCPU id {vcpu_id} out of range")
                allocations.append(Allocation(start, end, names[vcpu_id]))
        slices = [take(_SLICE) for _ in range(nslices)]
        core = CoreTable(
            cpu=cpu,
            length_ns=length_ns,
            allocations=allocations,
            slice_len_ns=slice_len,
            slices=[(int(a), int(b)) for a, b in slices],
        )
        core._starts = [a.start for a in allocations]
        core.validate_layout()
        cores[cpu] = core

    return SystemTable(length_ns=length_ns, cores=cores)


def serialize_arrays(table: SystemTable) -> bytes:
    """Encode a table as the dispatcher's structure-of-arrays payload.

    The record format above is the planner->hypervisor ABI; this is the
    dispatcher-side compilation of the same table: per core, the
    gap-free segment columns the array engine
    (:mod:`repro.sim.arraycore`) plays back with a cursor.  Layout
    (little-endian):

        header    : magic 'TBLA' | version u16 | ncpus u16 | length u64
                    | nvcpus u32 | reserved u32                  (24 B)
        string tbl: nvcpus x (u16 len | utf-8 bytes)
        per cpu   : cpu u32 | nsegs u32                           (8 B)
          ends    : nsegs x i64  (raw column, segment end times)
          handles : nsegs x i64  (raw column, vCPU ids; -1 = idle)

    Segment starts are not stored: the columns cover ``[0, length_ns)``
    without gaps, so ``start[i]`` is ``end[i-1]`` (``0`` for the first
    segment).  The raw i64 columns round-trip straight into
    ``array('q')`` with no per-record unpacking.
    """
    columns = table.as_arrays()
    chunks: List[bytes] = [
        _HEADER.pack(
            ARRAY_MAGIC,
            ARRAY_VERSION,
            len(columns),
            table.length_ns,
            len(table.vcpu_names),
            0,
        )
    ]
    for name in table.vcpu_names:
        encoded = name.encode("utf-8")
        chunks.append(struct.pack("<H", len(encoded)))
        chunks.append(encoded)
    for cpu in sorted(columns):
        _starts, ends, handles = columns[cpu]
        if sys.byteorder != "little":  # pragma: no cover - BE hosts only
            ends, handles = ends[:], handles[:]
            ends.byteswap()
            handles.byteswap()
        chunks.append(_ARRAY_CPU_HEADER.pack(cpu, len(ends)))
        chunks.append(ends.tobytes())
        chunks.append(handles.tobytes())
    return b"".join(chunks)


def deserialize_arrays(
    payload: bytes,
) -> Tuple[int, List[str], Dict[int, Tuple[array, array]]]:
    """Decode a structure-of-arrays payload.

    Returns ``(length_ns, vcpu_names, columns)`` where ``columns`` maps
    each cpu to its ``(ends, handles)`` pair of ``array('q')`` columns,
    ready for cursor playback.  Raises :class:`TableFormatError` on bad
    magic, version mismatch, or truncation, mirroring
    :func:`deserialize`.
    """
    view = memoryview(payload)
    offset = 0
    if _HEADER.size > len(view):
        raise TableFormatError("truncated array table header")
    magic, version, ncpus, length_ns, nvcpus, _ = _HEADER.unpack_from(view, 0)
    offset = _HEADER.size
    if magic != ARRAY_MAGIC:
        raise TableFormatError(f"bad array-table magic {magic!r}")
    if version != ARRAY_VERSION:
        raise TableFormatError(f"unsupported array-table version {version}")

    names: List[str] = []
    for _ in range(nvcpus):
        if offset + 2 > len(view):
            raise TableFormatError("truncated vCPU string table header")
        (name_len,) = struct.unpack_from("<H", view, offset)
        offset += 2
        if offset + name_len > len(view):
            raise TableFormatError("truncated vCPU string table")
        try:
            names.append(bytes(view[offset : offset + name_len]).decode("utf-8"))
        except UnicodeDecodeError as error:
            raise TableFormatError(f"corrupt vCPU name: {error}") from None
        offset += name_len

    columns: Dict[int, Tuple[array, array]] = {}
    for _ in range(ncpus):
        if offset + _ARRAY_CPU_HEADER.size > len(view):
            raise TableFormatError("truncated per-cpu array header")
        cpu, nsegs = _ARRAY_CPU_HEADER.unpack_from(view, offset)
        offset += _ARRAY_CPU_HEADER.size
        column_bytes = nsegs * 8
        if offset + 2 * column_bytes > len(view):
            raise TableFormatError(
                f"truncated segment columns for cpu {cpu} at offset {offset}"
            )
        ends = array("q")
        handles = array("q")
        ends.frombytes(view[offset : offset + column_bytes])
        offset += column_bytes
        handles.frombytes(view[offset : offset + column_bytes])
        offset += column_bytes
        if sys.byteorder != "little":  # pragma: no cover - BE hosts only
            ends.byteswap()
            handles.byteswap()
        for handle in handles:
            if handle >= len(names):
                raise TableFormatError(f"vCPU handle {handle} out of range")
        columns[cpu] = (ends, handles)
    return length_ns, names, columns


def serialize_delta(
    table: SystemTable, changed_cores: List[int], base_token: int
) -> bytes:
    """Encode a delta push: only ``changed_cores``, as segment columns.

    Layout mirrors :func:`serialize_arrays` — header (with the base
    token in the reserved slot), the *full* new vCPU string table
    (handle assignments shift when the census changes, so names always
    travel), then per changed cpu the gap-free ``ends``/``handles``
    columns.  ``base_token`` names the staged table generation the delta
    applies on top of; the hypervisor rejects a mismatched token with
    :class:`TableFormatError` and the daemon falls back to a full push.
    """
    columns = table.as_arrays()
    chunks: List[bytes] = [
        _HEADER.pack(
            DELTA_MAGIC,
            DELTA_VERSION,
            len(changed_cores),
            table.length_ns,
            len(table.vcpu_names),
            base_token,
        )
    ]
    for name in table.vcpu_names:
        encoded = name.encode("utf-8")
        chunks.append(struct.pack("<H", len(encoded)))
        chunks.append(encoded)
    for cpu in sorted(changed_cores):
        _starts, ends, handles = columns[cpu]
        if sys.byteorder != "little":  # pragma: no cover - BE hosts only
            ends, handles = ends[:], handles[:]
            ends.byteswap()
            handles.byteswap()
        chunks.append(_ARRAY_CPU_HEADER.pack(cpu, len(ends)))
        chunks.append(ends.tobytes())
        chunks.append(handles.tobytes())
    return b"".join(chunks)


def deserialize_delta(
    payload: bytes,
) -> Tuple[int, List[str], int, Dict[int, Tuple[array, array]]]:
    """Decode a delta payload.

    Returns ``(length_ns, vcpu_names, base_token, columns)`` where
    ``columns`` maps each *changed* cpu to its ``(ends, handles)``
    column pair.  Raises :class:`TableFormatError` on bad magic, version
    mismatch, or truncation.
    """
    view = memoryview(payload)
    if _HEADER.size > len(view):
        raise TableFormatError("truncated delta table header")
    magic, version, ncpus, length_ns, nvcpus, base_token = _HEADER.unpack_from(
        view, 0
    )
    offset = _HEADER.size
    if magic != DELTA_MAGIC:
        raise TableFormatError(f"bad delta-table magic {magic!r}")
    if version != DELTA_VERSION:
        raise TableFormatError(f"unsupported delta-table version {version}")

    names: List[str] = []
    for _ in range(nvcpus):
        if offset + 2 > len(view):
            raise TableFormatError("truncated vCPU string table header")
        (name_len,) = struct.unpack_from("<H", view, offset)
        offset += 2
        if offset + name_len > len(view):
            raise TableFormatError("truncated vCPU string table")
        try:
            names.append(bytes(view[offset : offset + name_len]).decode("utf-8"))
        except UnicodeDecodeError as error:
            raise TableFormatError(f"corrupt vCPU name: {error}") from None
        offset += name_len

    columns: Dict[int, Tuple[array, array]] = {}
    for _ in range(ncpus):
        if offset + _ARRAY_CPU_HEADER.size > len(view):
            raise TableFormatError("truncated per-cpu delta header")
        cpu, nsegs = _ARRAY_CPU_HEADER.unpack_from(view, offset)
        offset += _ARRAY_CPU_HEADER.size
        column_bytes = nsegs * 8
        if offset + 2 * column_bytes > len(view):
            raise TableFormatError(
                f"truncated segment columns for cpu {cpu} at offset {offset}"
            )
        ends = array("q")
        handles = array("q")
        ends.frombytes(view[offset : offset + column_bytes])
        offset += column_bytes
        handles.frombytes(view[offset : offset + column_bytes])
        offset += column_bytes
        if sys.byteorder != "little":  # pragma: no cover - BE hosts only
            ends.byteswap()
            handles.byteswap()
        for handle in handles:
            if handle >= len(names):
                raise TableFormatError(f"vCPU handle {handle} out of range")
        columns[cpu] = (ends, handles)
    return length_ns, names, base_token, columns


def table_size_bytes(table: SystemTable) -> int:
    """Size of the serialized table — the Fig. 4 memory-overhead metric.

    Slice counts are computed arithmetically (``ceil(length /
    slice_len)`` with the slice length of
    :meth:`~repro.core.table.CoreTable.build_slices`), so sizing a table
    never forces its slice tables to materialize — the planner builds
    slices lazily, on first dispatch lookup or serialization.
    """
    size = _HEADER.size
    for name in table.vcpu_names:
        size += 2 + len(name.encode("utf-8"))
    for core in table.cores.values():
        if core.slices:
            nslices = len(core.slices)
        else:
            shortest = core.min_allocation_ns()
            if shortest is None:
                nslices = 1
            else:
                nslices = -(-core.length_ns // max(shortest, 1))
        size += _CPU_HEADER.size
        size += _ALLOC.size * len(core.allocations)
        size += _SLICE.size * nslices
    return size
