"""The Tableau planner: on-demand scheduling-table generation.

This is the paper's primary contribution (Secs. 3 and 5): an
asynchronous component, invoked on VM creation/teardown/reconfiguration,
that converts per-vCPU ``(U, L)`` reservations into a cyclic scheduling
table via a progression of three increasingly powerful techniques:

1. **Partitioning** — worst-fit-decreasing assignment plus per-core EDF
   simulation (sufficient in virtually all practical cases);
2. **Semi-partitioning** — C=D task splitting for tasks that fit on no
   single core;
3. **Localized optimal scheduling** — DP-WRAP on a minimal cluster of
   "close" cores, guaranteeing success for any non-over-utilizing input.

The planner then post-processes (coalescing) and validates the result
before handing it to the dispatcher.  Slice tables are *not* built here:
the array dispatch engine plays back the planner's segment columns
directly and the object scheduler builds slices at install time, so
eager slice construction on every replan was pure waste.

Replanning is incremental at three levels.  Per-core tables are memoized
by exact task set (`_core_cache`), so a census that changes one VM only
re-simulates the cores WFD actually repacked.  Whole plans are memoized
by exact census + knobs (`_plan_memo`), so the daemon's periodic
same-census regeneration is a lookup.  And every result reports
``stats.changed_cores`` — the cores whose tables differ from the
previous plan — which is what lets the daemon push per-core column
deltas instead of full tables.
"""

from __future__ import annotations

import os
import time
from array import array
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.admission import AdmissionReport, admit_or_raise
from repro.core.affinity import CoschedulingPolicy, constrained_worst_fit
from repro.core.edfcore import (
    core_table_from_columns,
    estimate_jobs,
    materialize_core_columns,
)
from repro.core.optimal import dp_wrap_schedule, grow_cluster
from repro.core.params import VCpuSpec, VMSpec, flatten_vcpus
from repro.core.numa import NumaReport, numa_worst_fit
from repro.core.partition import worst_fit_decreasing
from repro.core.peephole import PeepholeReport, optimize_core
from repro.core.periods import HYPERPERIOD_NS, MIN_PERIOD_NS
from repro.core.postprocess import (
    DEFAULT_COALESCE_NS,
    CoalesceReport,
    coalesce,
)
from repro.core.serialize import table_size_bytes
from repro.core.splitting import DEFAULT_MIN_PIECE_NS, semi_partition
from repro.core.table import (
    Allocation,
    CoreTable,
    SystemTable,
    validate_against_tasks,
)
from repro.core.tasks import PeriodicTask, vcpu_to_task
from repro.errors import AdmissionError, PlanningError
from repro.topology import Topology, uniform

#: Planning methods, in escalation order.
METHOD_PARTITIONED = "partitioned"
METHOD_SEMI_PARTITIONED = "semi-partitioned"
METHOD_CLUSTERED = "clustered"

#: Estimated job releases across all uncached cores before per-core EDF
#: materialization is farmed out to worker processes.  The columnar
#: kernel materializes roughly 150k releases per second per core on the
#: reference container — about 3x the old object simulator — so the
#: fork/pickle overhead (~100 ms of pool spin-up) amortizes three times
#: later than it used to; below this bound the pool is strictly slower
#: than just running the kernels serially.
PARALLEL_MIN_JOBS = 120_000

#: Maximum per-core table memo entries kept by one planner (LRU).
CORE_CACHE_SIZE = 512

#: Whole-plan value memo entries (exact census + knobs -> PlanResult).
PLAN_MEMO_SIZE = 4

#: vCPU -> task conversion memo bound (cleared wholesale when full).
TASK_CACHE_SIZE = 4096

#: Process-wide core-record memo (cleared wholesale when full).  The
#: per-core key (see :meth:`Planner._core_key`) captures every input the
#: materialization reads, so a finished record is valid for *any*
#: planner instance — a restarted daemon or a service spawning a fresh
#: planner re-derives nothing the process has already computed.  Each
#: planner still keeps its own LRU (`_core_cache`) for hit accounting
#: and identity-stable reissue; this layer only backstops its misses.
_SHARED_CORE_CACHE: Dict[Tuple, "_CoreRecord"] = {}
_SHARED_CORE_CACHE_SIZE = 4096


@dataclass
class _CoreFragment:
    """Per-core aggregates the assembly and audit stages need.

    One entry per vCPU with service on the core, in first-allocation
    order — exactly the order ``SystemTable._rebuild_index`` would have
    discovered them.  Carrying these with the memoized core table makes
    index assembly and the guarantee audit O(vCPUs) instead of
    O(allocations) per plan.
    """

    names: List[str]
    first_starts: List[int]
    allocated: List[int]
    last_ends: List[int]
    #: Largest internal service gap (touching allocations merged, as in
    #: ``SystemTable.max_blackout_ns``); the wrap-around gap is derived
    #: from ``first_starts``/``last_ends`` at audit time.
    max_gaps: List[int]


def _fragment_of(table: CoreTable) -> _CoreFragment:
    """One pass over a finished core table -> its audit aggregates."""
    names: List[str] = []
    index: Dict[str, int] = {}
    first_starts: List[int] = []
    allocated: List[int] = []
    last_ends: List[int] = []
    max_gaps: List[int] = []
    for alloc in table.allocations:
        name = alloc.vcpu
        if name is None:
            continue
        slot = index.get(name)
        if slot is None:
            index[name] = len(names)
            names.append(name)
            first_starts.append(alloc.start)
            allocated.append(alloc.end - alloc.start)
            last_ends.append(alloc.end)
            max_gaps.append(0)
        else:
            gap = alloc.start - last_ends[slot]
            if gap > max_gaps[slot]:
                max_gaps[slot] = gap
            allocated[slot] += alloc.end - alloc.start
            last_ends[slot] = alloc.end
    return _CoreFragment(names, first_starts, allocated, last_ends, max_gaps)


@dataclass
class _CoreRecord:
    """Cached outcome of materializing one core's task set."""

    table: CoreTable
    coalesce: CoalesceReport
    peephole: Optional[PeepholeReport]
    fragment: _CoreFragment


@dataclass
class CensusDelta:
    """One batched census change (the service layer's flush-window unit).

    ``create`` and ``reconfigure`` take :class:`VMSpec` or
    :class:`VCpuSpec` items; ``destroy`` takes VM or vCPU names.  A
    reconfigured VM keeps its position in the census (so unrelated
    cores keep their WFD packing); creates append.
    """

    create: Sequence[Union[VMSpec, VCpuSpec]] = ()
    reconfigure: Sequence[Union[VMSpec, VCpuSpec]] = ()
    destroy: Sequence[str] = ()


@dataclass
class PlanStats:
    """Bookkeeping about one planning run (feeds Figs. 3 and 4)."""

    method: str
    generation_seconds: float
    num_vcpus: int
    num_tasks: int
    split_tasks: int = 0
    cluster_cores: List[int] = field(default_factory=list)
    table_bytes: int = 0
    coalesce: CoalesceReport = field(default_factory=CoalesceReport)
    peephole: Optional[PeepholeReport] = None
    compensated_vcpus: List[str] = field(default_factory=list)
    #: True when this plan was served from a PlanStore entry instead of
    #: being generated (generation_seconds then reports the *original*
    #: generation cost, not the lookup cost).
    plan_cache_hit: bool = False
    #: Cores whose tables differ from this planner's previous plan
    #: (``None`` when there is no previous plan or the core sets differ;
    #: callers must then treat every core as changed).
    changed_cores: Optional[List[int]] = None


@dataclass
class PlanResult:
    """A generated system table plus everything needed to reason about it."""

    table: SystemTable
    tasks: Dict[str, PeriodicTask]
    vcpus: Dict[str, VCpuSpec]
    assignment: Dict[int, List[PeriodicTask]]
    admission: AdmissionReport
    stats: PlanStats

    def task_of(self, vcpu_name: str) -> PeriodicTask:
        return self.tasks[vcpu_name]


class Planner:
    """On-demand table generator for a fixed machine topology.

    Args:
        topology: The machine (or an integer shorthand for an
            N-core single-socket machine).
        hyperperiod_ns: Table length; must have a rich divisor structure
            (the default is the paper's 102,702,600 ns).
        min_period_ns: Smallest enforceable period.
        coalesce_threshold_ns: Allocations shorter than this are merged
            away in post-processing.
        min_piece_ns: Smallest C=D piece semi-partitioning may create.
        strict_latency: Reject (rather than clamp) infeasible latency
            goals.
        policy: Optional co-scheduling constraints (affinity /
            anti-affinity groups; Sec. 5's "encourage or discourage
            co-scheduling" post-processing extension).
        peephole: Run the preemption-reducing peephole pass on every
            core table (Sec. 5's suggested optimization).  Peephole
            plans take the object materialization path (the pass
            operates on allocation objects); everything else runs the
            columnar kernels.
        split_compensation: Inflate the utilization of vCPUs that ended
            up split across cores by this fraction, compensating their
            migration overhead (Sec. 7.5's suggested remedy); applied in
            a single replanning retry.
        rotation: Rotates which equal-utilization vCPU gets split when
            splitting is unavoidable (Sec. 7.5's "take a turn" remedy);
            the daemon bumps this on periodic regeneration.
        numa: Prefer placing each VM's vCPUs on a single socket (the
            NUMA-aware extension of Sec. 8); locality is best-effort and
            placement falls back to plain worst-fit when a VM cannot fit
            one socket.
        parallel: Materialize per-core EDF schedules in worker processes
            when the task system is large enough to amortize the pool
            (see ``PARALLEL_MIN_JOBS``); the result is bit-identical to
            the serial path, so this is purely a wall-clock knob.  The
            pool never engages on single-CPU hosts, where it can only
            lose.

    The planner memoizes at two levels: finished core tables keyed by
    the exact task set handed to a core (so replanning an incrementally
    changed census only re-simulates cores whose task sets actually
    changed), and whole plans keyed by the exact census plus every knob
    (so periodic same-census regeneration is a dictionary lookup).
    """

    def __init__(
        self,
        topology: Union[Topology, int],
        hyperperiod_ns: int = HYPERPERIOD_NS,
        min_period_ns: int = MIN_PERIOD_NS,
        coalesce_threshold_ns: int = DEFAULT_COALESCE_NS,
        min_piece_ns: int = DEFAULT_MIN_PIECE_NS,
        strict_latency: bool = True,
        policy: Optional[CoschedulingPolicy] = None,
        peephole: bool = False,
        split_compensation: float = 0.0,
        rotation: int = 0,
        numa: bool = False,
        parallel: bool = True,
    ) -> None:
        if isinstance(topology, int):
            topology = uniform(topology)
        self.topology = topology
        self.hyperperiod_ns = hyperperiod_ns
        self.min_period_ns = min_period_ns
        self.coalesce_threshold_ns = coalesce_threshold_ns
        self.min_piece_ns = min_piece_ns
        self.strict_latency = strict_latency
        self.policy = policy
        self.peephole = peephole
        self.split_compensation = split_compensation
        self.rotation = rotation
        self.numa = numa
        self.parallel = parallel
        self.last_numa_report: Optional[NumaReport] = None
        self._core_cache: "OrderedDict[Tuple, _CoreRecord]" = OrderedDict()
        self.core_cache_hits = 0
        self.core_cache_misses = 0
        self._plan_memo: "OrderedDict[Tuple, PlanResult]" = OrderedDict()
        self.plan_memo_hits = 0
        self.plan_memo_misses = 0
        self._task_cache: Dict[VCpuSpec, PeriodicTask] = {}
        self._dedicated_cache: Dict[Tuple[int, str], CoreTable] = {}
        #: Core tables of the previous plan, for changed-core detection
        #: (allocation-list identity: the core memo shares allocation
        #: lists across reissues, so `is` equality means byte equality).
        self._last_tables: Optional[Dict[int, CoreTable]] = None
        #: The census last planned, the base `plan_delta` diffs against.
        self._census: Optional[List[VCpuSpec]] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def plan(
        self,
        workload: Union[Sequence[VMSpec], Sequence[VCpuSpec], CensusDelta],
    ) -> PlanResult:
        """Generate a validated system table for a set of VMs (or vCPUs).

        Also accepts a :class:`CensusDelta`, which is applied to the
        previously planned census (see :meth:`plan_delta`).
        """
        if isinstance(workload, CensusDelta):
            return self.plan_delta(workload)
        vcpus = self._as_vcpus(workload)
        result = self._plan_once(vcpus)
        if self.split_compensation > 0.0 and result.stats.split_tasks:
            compensated = self._compensate(result)
            if compensated is not None:
                result = compensated
        self._census = vcpus
        return result

    def plan_delta(self, delta: CensusDelta) -> PlanResult:
        """Replan after a census diff against the previous census.

        Equivalent to editing the census by hand and calling
        :meth:`plan` — the differential suite holds the two bit-equal —
        but states the *intent*: the per-core memo then confines EDF
        re-simulation to the cores WFD actually repacked, and
        ``stats.changed_cores`` tells the daemon which per-core columns
        to push.
        """
        base = self._census
        if base is None:
            raise PlanningError(
                "delta replan without a base census (call plan() first)"
            )
        return self.plan(self._apply_delta(base, delta))

    def _apply_delta(
        self, base: Sequence[VCpuSpec], delta: CensusDelta
    ) -> List[VCpuSpec]:
        """The previous census with ``delta`` applied, order-preserving."""
        census = list(base)
        for token in delta.destroy:
            kept = [v for v in census if v.name != token and v.vm != token]
            if len(kept) == len(census):
                raise PlanningError(
                    f"delta destroy of unknown vCPU/VM {token!r}"
                )
            census = kept
        for item in delta.reconfigure:
            if isinstance(item, VMSpec):
                name = item.name
                indices = [i for i, v in enumerate(census) if v.vm == name]
                replacement = list(item.vcpus)
            else:
                name = item.name
                indices = [i for i, v in enumerate(census) if v.name == name]
                replacement = [item]
            if not indices:
                raise PlanningError(
                    f"delta reconfigure of unknown vCPU/VM {name!r}"
                )
            first = indices[0]
            for i in reversed(indices):
                del census[i]
            census[first:first] = replacement
        existing = {v.name for v in census}
        for item in delta.create:
            created = item.vcpus if isinstance(item, VMSpec) else [item]
            for vcpu in created:
                if vcpu.name in existing:
                    raise PlanningError(
                        f"delta create of duplicate vCPU {vcpu.name!r}"
                    )
                existing.add(vcpu.name)
                census.append(vcpu)
        return census

    def _compensate(self, result: PlanResult) -> Optional[PlanResult]:
        """Replan with split vCPUs' utilization inflated (Sec. 7.5)."""
        split_names = [
            name for name in result.vcpus if result.table.is_split(name)
        ]
        inflated: List[VCpuSpec] = []
        for name, spec in result.vcpus.items():
            if name in split_names:
                boosted = min(1.0, spec.utilization * (1 + self.split_compensation))
                inflated.append(
                    VCpuSpec(
                        name=spec.name,
                        utilization=boosted,
                        latency_ns=spec.latency_ns,
                        capped=spec.capped,
                        vm=spec.vm,
                    )
                )
            else:
                inflated.append(spec)
        try:
            retry = self._plan_once(inflated)
        except (AdmissionError, PlanningError):
            # The inflated census no longer fits; keep the original plan
            # (uncompensated splits beat a failed reconfiguration).
            return None
        retry.stats.compensated_vcpus = split_names
        return retry

    def _plan_once(self, vcpus: List[VCpuSpec]) -> PlanResult:
        # Wall time is measured only to report planner generation cost
        # (PlanStats.generation_seconds); it never feeds scheduling state.
        started = time.perf_counter()  # repro: allow[det-wallclock]
        memo_key: Optional[Tuple] = None
        if self.policy is None and not self.numa:
            memo_key = (
                tuple(vcpus),
                self.hyperperiod_ns,
                self.min_period_ns,
                self.coalesce_threshold_ns,
                self.min_piece_ns,
                self.strict_latency,
                self.peephole,
                self.rotation,
            )
            cached = self._plan_memo.get(memo_key)
            if cached is not None:
                self._plan_memo.move_to_end(memo_key)
                self.plan_memo_hits += 1
                return self._reissue_plan(cached, started)
            self.plan_memo_misses += 1
        guest_cores = self.topology.guest_cores
        admission = admit_or_raise(
            vcpus, len(guest_cores), self.hyperperiod_ns, self.min_period_ns
        )

        dedicated = [v for v in vcpus if v.needs_dedicated_core]
        shared = [v for v in vcpus if not v.needs_dedicated_core]
        # Dedicated vCPUs claim cores from the tail of the guest pool so
        # the shared pool keeps contiguous low-numbered cores.
        dedicated_cores = guest_cores[len(guest_cores) - len(dedicated) :]
        shared_cores = guest_cores[: len(guest_cores) - len(dedicated)]

        tasks = self._tasks_for(shared)
        assignment, method, cluster_cores, split_count = self._assign(
            tasks, shared_cores
        )

        core_tables, report, peephole_report, fragments = self._materialize(
            assignment, cluster_cores
        )
        horizon = self.hyperperiod_ns
        for vcpu, core in zip(dedicated, dedicated_cores):
            core_tables[core] = self._dedicated_table(core, vcpu.name)
            fragments[core] = _CoreFragment(
                [vcpu.name], [0], [horizon], [horizon], [0]
            )

        system, info = self._assemble(core_tables, fragments)
        self._validate_assembled(system, info)

        task_index = {t.name: t for t in tasks}
        for vcpu in dedicated:
            task_index[vcpu.name] = PeriodicTask(
                name=vcpu.name,
                cost=self.hyperperiod_ns,
                period=self.hyperperiod_ns,
                vcpu=vcpu,
            )
        self._check_guarantees(core_tables, vcpus, task_index, info)

        changed = self._diff_tables(core_tables)
        self._last_tables = core_tables

        stats = PlanStats(
            method=method,
            # repro: allow[det-wallclock] -- stats only, never scheduling state
            generation_seconds=time.perf_counter() - started,
            num_vcpus=len(vcpus),
            num_tasks=len(tasks),
            split_tasks=split_count,
            cluster_cores=cluster_cores,
            coalesce=report,
            peephole=peephole_report,
            changed_cores=changed,
        )
        stats.table_bytes = table_size_bytes(system)
        result = PlanResult(
            table=system,
            tasks=task_index,
            vcpus={v.name: v for v in vcpus},
            assignment=assignment,
            admission=admission,
            stats=stats,
        )
        if memo_key is not None:
            self._plan_memo[memo_key] = result
            if len(self._plan_memo) > PLAN_MEMO_SIZE:
                self._plan_memo.popitem(last=False)
        return result

    def _reissue_plan(self, cached: PlanResult, started: float) -> PlanResult:
        """A memo hit: the cached plan under fresh, un-shared stats.

        The table/tasks/assignment are structurally shared (immutable
        after planning); the stats object is rebuilt so callers mutating
        flags (``plan_cache_hit``, ``compensated_vcpus``) cannot poison
        the memoized original, and ``changed_cores`` reflects *this*
        call's position in the plan sequence, not the original's.
        """
        old = cached.stats
        changed = self._diff_tables(cached.table.cores)
        self._last_tables = cached.table.cores
        # A whole-plan hit reuses every core table, so it counts as a
        # full sweep of core-cache hits (and zero new simulations).
        self.core_cache_hits += len(cached.table.cores)
        stats = PlanStats(
            method=old.method,
            # repro: allow[det-wallclock] -- stats only, never scheduling state
            generation_seconds=time.perf_counter() - started,
            num_vcpus=old.num_vcpus,
            num_tasks=old.num_tasks,
            split_tasks=old.split_tasks,
            cluster_cores=list(old.cluster_cores),
            table_bytes=old.table_bytes,
            coalesce=old.coalesce,
            peephole=old.peephole,
            changed_cores=changed,
        )
        return PlanResult(
            table=cached.table,
            tasks=cached.tasks,
            vcpus=cached.vcpus,
            assignment=cached.assignment,
            admission=cached.admission,
            stats=stats,
        )

    def _diff_tables(
        self, core_tables: Dict[int, CoreTable]
    ) -> Optional[List[int]]:
        """Cores whose tables differ from the previous plan, by identity.

        Reissued and memoized tables share allocation lists with their
        originals, so `is` comparison is exact: shared list -> identical
        table.  ``None`` (not ``[]``) when no previous plan exists or
        the core sets differ — the caller must then push everything.
        """
        previous = self._last_tables
        if previous is None or previous.keys() != core_tables.keys():
            return None
        return [
            cpu
            for cpu in sorted(core_tables)
            if previous[cpu].allocations is not core_tables[cpu].allocations
        ]

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def _as_vcpus(
        self, workload: Union[Sequence[VMSpec], Sequence[VCpuSpec]]
    ) -> List[VCpuSpec]:
        items = list(workload)
        if items and isinstance(items[0], VMSpec):
            return flatten_vcpus(items)
        return list(items)  # type: ignore[arg-type]

    def _tasks_for(self, shared: Sequence[VCpuSpec]) -> List[PeriodicTask]:
        """Memoized :func:`repro.core.tasks.vcpus_to_tasks`.

        The (U, L) -> (C, T) conversion bisects the hyperperiod divisor
        list per vCPU; under churn the same specs recur plan after plan,
        so the finished (frozen) tasks are cached by spec.
        """
        cache = self._task_cache
        tasks: List[PeriodicTask] = []
        for spec in shared:
            task = cache.get(spec)
            if task is None:
                task = vcpu_to_task(
                    spec,
                    self.hyperperiod_ns,
                    self.min_period_ns,
                    self.strict_latency,
                )
                if len(cache) >= TASK_CACHE_SIZE:
                    cache.clear()
                cache[spec] = task
            tasks.append(task)
        return tasks

    def _dedicated_table(self, core: int, name: str) -> CoreTable:
        """Memoized single-allocation table for a dedicated vCPU.

        Reusing the object keeps unchanged dedicated cores identity-
        stable across plans, so they never show up in changed-core
        diffs (and never get re-pushed by the delta path).
        """
        key = (core, name)
        table = self._dedicated_cache.get(key)
        if table is None:
            if len(self._dedicated_cache) >= TASK_CACHE_SIZE:
                self._dedicated_cache.clear()
            table = CoreTable(
                cpu=core,
                length_ns=self.hyperperiod_ns,
                allocations=[Allocation(0, self.hyperperiod_ns, name)],
            )
            self._dedicated_cache[key] = table
        return table

    def _assign(
        self, tasks: Sequence[PeriodicTask], cores: Sequence[int]
    ):
        """The three-stage progression; returns assignment and metadata."""
        if not tasks:
            return {core: [] for core in cores}, METHOD_PARTITIONED, [], 0
        if not cores:
            raise PlanningError("no shared cores left for non-dedicated vCPUs")

        if self.policy is not None:
            constrained = constrained_worst_fit(tasks, cores, self.policy)
            if constrained.success:
                return constrained.assignment, METHOD_PARTITIONED, [], 0
            raise PlanningError(
                "co-scheduling constraints could not be satisfied for "
                + ", ".join(t.name for t in constrained.unassigned)
            )

        if self.numa:
            local, numa_report = numa_worst_fit(tasks, cores, self.topology)
            if local.success:
                self.last_numa_report = numa_report
                return local.assignment, METHOD_PARTITIONED, [], 0
            # Fall through: locality is a preference, not a guarantee.

        partitioned = worst_fit_decreasing(tasks, cores, rotation=self.rotation)
        if partitioned.success:
            return partitioned.assignment, METHOD_PARTITIONED, [], 0

        semi = semi_partition(
            tasks,
            cores,
            self.hyperperiod_ns,
            min_piece_ns=self.min_piece_ns,
            rotation=self.rotation,
        )
        if semi.success:
            return (
                semi.assignment,
                METHOD_SEMI_PARTITIONED,
                [],
                semi.split_count,
            )

        # Localized optimal scheduling: restart from the plain partition and
        # cover the leftovers with a minimal DP-WRAP cluster.
        loads = {
            core: sum(t.utilization for t in partitioned.assignment[core])
            for core in cores
        }
        demand = sum(t.utilization for t in partitioned.unassigned)
        cluster = grow_cluster(loads, self.topology.socket_map, demand)
        assignment = {
            core: list(ts)
            for core, ts in partitioned.assignment.items()
            if core not in cluster
        }
        cluster_tasks = list(partitioned.unassigned)
        for core in cluster:
            cluster_tasks.extend(partitioned.assignment[core])
        for core in cluster:
            assignment[core] = []
        assignment["__cluster__"] = cluster_tasks  # type: ignore[index]
        return assignment, METHOD_CLUSTERED, cluster, 0

    def _materialize(self, assignment, cluster_cores):
        """Simulate schedules, rename task pieces to vCPUs, coalesce.

        A finished core table depends only on the (ordered) task set it
        was generated from, so results are memoized: cores whose task
        set is unchanged since an earlier plan reuse the cached table
        (sharing its allocation list and segment columns) and skip EDF
        simulation and validation entirely.  A hit whose core also held
        the identical table in the *previous* plan reuses that exact
        object, keeping unchanged cores identity-stable for the delta
        push.  Cache misses run the columnar kernels, serially or (for
        large task systems on multi-CPU hosts) in a process pool — all
        paths produce bit-identical tables.
        """
        report = CoalesceReport()
        core_tables: Dict[int, CoreTable] = {}
        fragments: Dict[int, _CoreFragment] = {}
        cluster_tasks = assignment.pop("__cluster__", None)
        peephole_report: Optional[PeepholeReport] = None

        cache = self._core_cache
        last = self._last_tables
        pending: List[Tuple[int, List[PeriodicTask], Tuple]] = []
        for core, tasks in assignment.items():
            key = self._core_key(tasks)
            record = cache.get(key)
            if record is not None:
                cache.move_to_end(key)
                self.core_cache_hits += 1
            else:
                self.core_cache_misses += 1
                record = _SHARED_CORE_CACHE.get(key)
                if record is None:
                    pending.append((core, tasks, key))
                    continue
                cache[key] = record
                if len(cache) > CORE_CACHE_SIZE:
                    cache.popitem(last=False)
            previous = last.get(core) if last is not None else None
            if (
                previous is not None
                and previous.allocations is record.table.allocations
            ):
                core_tables[core] = previous
            else:
                core_tables[core] = _reissue_table(record.table, core)
            fragments[core] = record.fragment
            report.merge(record.coalesce)
            peephole_report = _merge_peephole(peephole_report, record.peephole)

        for (core, _tasks, key), outcome in zip(
            pending, self._materialize_pending(pending)
        ):
            table, core_coalesce, core_peephole = outcome
            fragment = _fragment_of(table)
            core_tables[core] = table
            fragments[core] = fragment
            report.merge(core_coalesce)
            peephole_report = _merge_peephole(peephole_report, core_peephole)
            record = _CoreRecord(table, core_coalesce, core_peephole, fragment)
            cache[key] = record
            if len(cache) > CORE_CACHE_SIZE:
                cache.popitem(last=False)
            if len(_SHARED_CORE_CACHE) >= _SHARED_CORE_CACHE_SIZE:
                _SHARED_CORE_CACHE.clear()
            _SHARED_CORE_CACHE[key] = record

        if cluster_tasks is not None:
            cluster_tables = dp_wrap_schedule(
                cluster_tasks, cluster_cores, self.hyperperiod_ns
            )
            for core, table in cluster_tables.items():
                finished, core_report = _rename_and_coalesce(
                    table, self.coalesce_threshold_ns
                )
                report.merge(core_report)
                core_tables[core] = finished
                fragments[core] = _fragment_of(finished)
            assignment["__cluster__"] = cluster_tasks
        return core_tables, report, peephole_report, fragments

    def _core_key(self, tasks: Sequence[PeriodicTask]) -> Tuple:
        # Order matters: EDF breaks deadline ties by release sequence,
        # which follows task position, so the key must be the ordered
        # tuple (plus every planner knob the materialization reads).
        return (
            tuple((t.name, t.cost, t.period, t.deadline, t.offset) for t in tasks),
            self.hyperperiod_ns,
            self.coalesce_threshold_ns,
            self.peephole,
        )

    def _materialize_pending(self, pending):
        """Materialize cache-miss cores, in processes when large enough."""
        if (
            self.parallel
            and len(pending) >= 2
            and (os.cpu_count() or 1) >= 2  # repro: allow[det-env-branch]
        ):
            jobs = 0
            for _core, tasks, _key in pending:
                jobs += estimate_jobs(tasks, self.hyperperiod_ns)
            if jobs >= PARALLEL_MIN_JOBS:
                results = self._materialize_parallel(pending)
                if results is not None:
                    return results
        return [
            self._materialize_one(core, tasks) for core, tasks, _key in pending
        ]

    def _materialize_one(self, core, tasks):
        """One core through the columnar pipeline (object path for peephole)."""
        if self.peephole:
            return _materialize_core(
                core,
                tasks,
                self.hyperperiod_ns,
                True,
                self.coalesce_threshold_ns,
            )
        table, core_report = materialize_core_columns(
            core, tasks, self.hyperperiod_ns, self.coalesce_threshold_ns
        )
        return table, core_report, None

    def _materialize_parallel(self, pending):
        """Fan cache-miss cores out to a process pool (None on failure).

        Workers receive plain task tuples (cheap to pickle, no VCpuSpec
        payload) and ship back raw segment-column bytes — not pickled
        CoreTable objects — so the transfer cost is two i64 columns per
        core; the parent revives tables from the columns.  Any
        pool-level failure falls back to the serial path, which computes
        the identical result.
        """
        try:
            from concurrent.futures import ProcessPoolExecutor

            payloads = [
                (
                    core,
                    tuple(
                        (t.name, t.cost, t.period, t.deadline, t.offset)
                        for t in tasks
                    ),
                    self.hyperperiod_ns,
                    self.peephole,
                    self.coalesce_threshold_ns,
                )
                for core, tasks, _key in pending
            ]
            # Pool sizing only: every worker computes the same tables, so
            # the plan is identical whatever cpu_count() reports.
            workers = min(len(pending), os.cpu_count() or 1)  # repro: allow[det-env-branch]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(_materialize_core_worker, payloads))
        except Exception:
            return None
        return [_revive_worker_outcome(outcome) for outcome in outcomes]

    # ------------------------------------------------------------------
    # Assembly and audit
    # ------------------------------------------------------------------

    def _assemble(
        self,
        core_tables: Dict[int, CoreTable],
        fragments: Dict[int, _CoreFragment],
    ) -> Tuple[SystemTable, Dict[str, List[Tuple[int, _CoreFragment, int]]]]:
        """Build the system table with a precomputed vCPU index.

        Walking the per-core fragments reproduces exactly what
        ``SystemTable._rebuild_index`` would derive from the allocation
        lists — names in first-discovery order over sorted cores, home
        cores in first-allocation time order — at O(vCPUs) instead of
        O(allocations).  Also returns, per vCPU, its ``(core, fragment,
        slot)`` entries for the audit stages.
        """
        names: List[str] = []
        homes: Dict[str, List[Tuple[int, int]]] = {}
        info: Dict[str, List[Tuple[int, _CoreFragment, int]]] = {}
        for cpu in sorted(core_tables):
            fragment = fragments[cpu]
            fragment_names = fragment.names
            first_starts = fragment.first_starts
            for slot in range(len(fragment_names)):
                name = fragment_names[slot]
                entries = homes.get(name)
                if entries is None:
                    names.append(name)
                    homes[name] = entries = []
                    info[name] = []
                entries.append((first_starts[slot], cpu))
                info[name].append((cpu, fragment, slot))
        home_cores = {
            name: [cpu for _start, cpu in sorted(entries)]
            for name, entries in homes.items()
        }
        system = SystemTable(
            length_ns=self.hyperperiod_ns,
            cores=core_tables,
            vcpu_names=names,
            home_cores=home_cores,
        )
        return system, info

    def _validate_assembled(
        self,
        system: SystemTable,
        info: Dict[str, List[Tuple[int, _CoreFragment, int]]],
    ) -> None:
        """No-parallel-service check, confined to multi-home vCPUs.

        Per-core layout was already validated when each table was
        materialized (and memo hits share validated allocation lists),
        so the only whole-system hazard left is a vCPU with allocations
        on several cores overlapping itself — single-home vCPUs cannot.
        """
        for name, entries in info.items():
            if len(entries) < 2:
                continue
            intervals: List[Tuple[int, int]] = []
            for cpu, _fragment, _slot in entries:
                intervals.extend(system.cores[cpu].service_intervals(name))
            intervals.sort()
            for (_s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                if s2 < e1:
                    raise PlanningError(
                        f"vCPU {name} scheduled on two cores during "
                        f"[{s2}, {min(e1, e2)})"
                    )

    def _check_guarantees(
        self,
        core_tables: Dict[int, CoreTable],
        vcpus: Sequence[VCpuSpec],
        tasks: Dict[str, PeriodicTask],
        info: Dict[str, List[Tuple[int, _CoreFragment, int]]],
    ) -> None:
        """Final guarantee audit: utilization and blackout per vCPU.

        Coalescing may legitimately move up to the threshold per
        allocation boundary, so both checks carry a matching tolerance.
        Single-home vCPUs (virtually all of them) are audited from the
        per-core fragment aggregates without touching any allocation;
        only split vCPUs pay an interval merge across their home cores.
        """
        tolerance = 2 * self.coalesce_threshold_ns
        horizon = self.hyperperiod_ns
        for vcpu in vcpus:
            task = tasks[vcpu.name]
            entries = info.get(vcpu.name)
            allocated = 0
            if entries:
                for _cpu, fragment, slot in entries:
                    allocated += fragment.allocated[slot]
            promised = task.cost * (horizon // task.period)
            if allocated + tolerance < promised:
                raise PlanningError(
                    f"{vcpu.name}: table allocates {allocated} ns/cycle, "
                    f"promised {promised}"
                )
            if vcpu.needs_dedicated_core:
                continue
            if not entries:
                blackout = 2 * horizon
            elif len(entries) == 1:
                _cpu, fragment, slot = entries[0]
                wrap = (
                    fragment.first_starts[slot]
                    + horizon
                    - fragment.last_ends[slot]
                )
                gap = fragment.max_gaps[slot]
                blackout = gap if gap > wrap else wrap
            else:
                blackout = _merged_blackout(
                    core_tables, entries, vcpu.name, horizon
                )
            if blackout > vcpu.latency_ns + tolerance:
                raise PlanningError(
                    f"{vcpu.name}: worst-case blackout {blackout} ns exceeds "
                    f"latency goal {vcpu.latency_ns} ns"
                )


def _merged_blackout(
    core_tables: Dict[int, CoreTable],
    entries: List[Tuple[int, _CoreFragment, int]],
    name: str,
    horizon: int,
) -> int:
    """Worst service gap of a split vCPU across its home cores.

    The same touching-intervals merge as
    :meth:`SystemTable.max_blackout_ns`, over just this vCPU's cores.
    """
    intervals: List[Tuple[int, int]] = []
    for cpu, _fragment, _slot in entries:
        intervals.extend(core_tables[cpu].service_intervals(name))
    intervals.sort()
    first_start = intervals[0][0]
    previous_end = intervals[0][1]
    worst = 0
    for start, end in intervals[1:]:
        if start <= previous_end:
            if end > previous_end:
                previous_end = end
        else:
            gap = start - previous_end
            if gap > worst:
                worst = gap
            previous_end = end
    wrap = first_start + horizon - previous_end
    return worst if worst > wrap else wrap


def _vcpu_name_of(task_name: Optional[str]) -> Optional[str]:
    """Strip the C=D piece suffix: ``vm0.vcpu0#1`` -> ``vm0.vcpu0``."""
    if task_name is None:
        return None
    return task_name.split("#")[0]


def _rename_and_coalesce(
    table: CoreTable, threshold_ns: int
) -> Tuple[CoreTable, CoalesceReport]:
    """Task-piece names -> vCPU names, then coalesce short allocations."""
    renamed = CoreTable(
        cpu=table.cpu,
        length_ns=table.length_ns,
        allocations=[
            Allocation(a.start, a.end, _vcpu_name_of(a.vcpu))
            for a in table.allocations
        ],
    )
    return coalesce(renamed, threshold_ns)


def _materialize_core(
    core: int,
    tasks: Sequence[PeriodicTask],
    horizon: int,
    peephole: bool,
    threshold_ns: int,
) -> Tuple[CoreTable, CoalesceReport, Optional[PeepholeReport]]:
    """The object-pipeline fallback: EDF, validate, peephole, coalesce.

    Only the peephole path still runs it (the pass rewrites allocation
    objects); plain plans use the columnar kernels in
    :mod:`repro.core.edfcore`, which produce bit-identical tables.
    Module-level (not a method) so the process pool can pickle it by
    reference; everything it needs travels in the arguments.
    """
    from repro.core.edf import simulate_edf

    table = simulate_edf(tasks, horizon, cpu=core)
    validate_against_tasks(table, tasks)
    peephole_report: Optional[PeepholeReport] = None
    if peephole:
        table, peephole_report = optimize_core(table, tasks)
    finished, coalesce_report = _rename_and_coalesce(table, threshold_ns)
    return finished, coalesce_report, peephole_report


def _materialize_core_worker(payload):
    """Process-pool entry: rebuild tasks from plain tuples and materialize.

    Columnar outcomes travel as raw column bytes plus the coalesce
    counters — a fraction of a pickled CoreTable — and are revived by
    :func:`_revive_worker_outcome`; the rare peephole path returns the
    object triple unchanged.
    """
    core, task_tuples, horizon, peephole, threshold_ns = payload
    tasks = [
        PeriodicTask(name=name, cost=cost, period=period, deadline=deadline, offset=offset)
        for name, cost, period, deadline, offset in task_tuples
    ]
    if peephole:
        return _materialize_core(core, tasks, horizon, peephole, threshold_ns)
    table, report = materialize_core_columns(core, tasks, horizon, threshold_ns)
    return (
        core,
        horizon,
        table._seg_ends.tobytes(),
        table._seg_local.tobytes(),
        tuple(table._seg_names or ()),
        (
            dict(report.lost_ns),
            dict(report.gained_ns),
            report.merged_count,
            report.dropped_count,
        ),
    )


def _revive_worker_outcome(outcome):
    """Rebuild a (table, coalesce, peephole) triple from a worker result."""
    if len(outcome) == 3:
        return outcome
    core, horizon, ends_bytes, local_bytes, names, counters = outcome
    ends = array("q")
    ends.frombytes(ends_bytes)
    handles = array("q")
    handles.frombytes(local_bytes)
    table = core_table_from_columns(core, horizon, ends, handles, list(names))
    lost_ns, gained_ns, merged_count, dropped_count = counters
    report = CoalesceReport(
        lost_ns=lost_ns,
        gained_ns=gained_ns,
        merged_count=merged_count,
        dropped_count=dropped_count,
    )
    return table, report, None


def _reissue_table(template: CoreTable, cpu: int) -> CoreTable:
    """A cached core table re-targeted at ``cpu``.

    Allocation, slice, and segment-column containers are shared with the
    template — they are never mutated in place (rebuilds always assign
    fresh containers) — so a cache hit costs one small object, not a
    table copy, and ``as_arrays`` stays zero-copy across reissues.
    """
    return CoreTable(
        cpu=cpu,
        length_ns=template.length_ns,
        allocations=template.allocations,
        slice_len_ns=template.slice_len_ns,
        slices=template.slices,
        _starts=template._starts,
        _bounds=template._bounds,
        _seg_starts=template._seg_starts,
        _seg_ends=template._seg_ends,
        _seg_local=template._seg_local,
        _seg_names=template._seg_names,
        _min_alloc_ns=template._min_alloc_ns,
    )


def _merge_peephole(
    total: Optional[PeepholeReport], part: Optional[PeepholeReport]
) -> Optional[PeepholeReport]:
    if part is None:
        return total
    if total is None:
        return PeepholeReport(
            swaps_applied=part.swaps_applied,
            swaps_rejected=part.swaps_rejected,
            preemptions_before=part.preemptions_before,
            preemptions_after=part.preemptions_after,
        )
    return PeepholeReport(
        swaps_applied=total.swaps_applied + part.swaps_applied,
        swaps_rejected=total.swaps_rejected + part.swaps_rejected,
        preemptions_before=total.preemptions_before + part.preemptions_before,
        preemptions_after=total.preemptions_after + part.preemptions_after,
    )


def plan_tables(
    workload: Union[Sequence[VMSpec], Sequence[VCpuSpec]],
    topology: Union[Topology, int],
    **planner_kwargs,
) -> PlanResult:
    """One-shot convenience wrapper around :class:`Planner`."""
    return Planner(topology, **planner_kwargs).plan(workload)
