"""The Tableau planner: on-demand scheduling-table generation.

This is the paper's primary contribution (Secs. 3 and 5): an
asynchronous component, invoked on VM creation/teardown/reconfiguration,
that converts per-vCPU ``(U, L)`` reservations into a cyclic scheduling
table via a progression of three increasingly powerful techniques:

1. **Partitioning** — worst-fit-decreasing assignment plus per-core EDF
   simulation (sufficient in virtually all practical cases);
2. **Semi-partitioning** — C=D task splitting for tasks that fit on no
   single core;
3. **Localized optimal scheduling** — DP-WRAP on a minimal cluster of
   "close" cores, guaranteeing success for any non-over-utilizing input.

The planner then post-processes (coalescing, slice tables) and validates
the result before handing it to the dispatcher.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.admission import AdmissionReport, admit_or_raise
from repro.core.affinity import CoschedulingPolicy, constrained_worst_fit
from repro.core.edf import simulate_edf
from repro.core.optimal import dp_wrap_schedule, grow_cluster
from repro.core.params import VCpuSpec, VMSpec, flatten_vcpus
from repro.core.numa import NumaReport, numa_worst_fit
from repro.core.partition import worst_fit_decreasing
from repro.core.peephole import PeepholeReport, optimize_core
from repro.core.periods import HYPERPERIOD_NS, MIN_PERIOD_NS
from repro.core.postprocess import (
    DEFAULT_COALESCE_NS,
    CoalesceReport,
    coalesce,
)
from repro.core.serialize import table_size_bytes
from repro.core.splitting import DEFAULT_MIN_PIECE_NS, semi_partition
from repro.core.table import (
    Allocation,
    CoreTable,
    SystemTable,
    validate_against_tasks,
)
from repro.core.tasks import PeriodicTask, vcpus_to_tasks
from repro.errors import AdmissionError, PlanningError
from repro.topology import Topology, uniform

#: Planning methods, in escalation order.
METHOD_PARTITIONED = "partitioned"
METHOD_SEMI_PARTITIONED = "semi-partitioned"
METHOD_CLUSTERED = "clustered"

#: Estimated job releases across all uncached cores before per-core EDF
#: materialization is farmed out to worker processes.  Below this the
#: fork/pickle overhead dwarfs the simulation itself (typical replans
#: finish in single-digit milliseconds); the pool only engages for
#: genuinely large task systems.
PARALLEL_MIN_JOBS = 20_000

#: Maximum per-core table memo entries kept by one planner (LRU).
CORE_CACHE_SIZE = 512


@dataclass
class _CoreRecord:
    """Cached outcome of materializing one core's task set."""

    table: CoreTable
    coalesce: CoalesceReport
    peephole: Optional[PeepholeReport]


@dataclass
class PlanStats:
    """Bookkeeping about one planning run (feeds Figs. 3 and 4)."""

    method: str
    generation_seconds: float
    num_vcpus: int
    num_tasks: int
    split_tasks: int = 0
    cluster_cores: List[int] = field(default_factory=list)
    table_bytes: int = 0
    coalesce: CoalesceReport = field(default_factory=CoalesceReport)
    peephole: Optional[PeepholeReport] = None
    compensated_vcpus: List[str] = field(default_factory=list)
    #: True when this plan was served from a PlanStore entry instead of
    #: being generated (generation_seconds then reports the *original*
    #: generation cost, not the lookup cost).
    plan_cache_hit: bool = False


@dataclass
class PlanResult:
    """A generated system table plus everything needed to reason about it."""

    table: SystemTable
    tasks: Dict[str, PeriodicTask]
    vcpus: Dict[str, VCpuSpec]
    assignment: Dict[int, List[PeriodicTask]]
    admission: AdmissionReport
    stats: PlanStats

    def task_of(self, vcpu_name: str) -> PeriodicTask:
        return self.tasks[vcpu_name]


class Planner:
    """On-demand table generator for a fixed machine topology.

    Args:
        topology: The machine (or an integer shorthand for an
            N-core single-socket machine).
        hyperperiod_ns: Table length; must have a rich divisor structure
            (the default is the paper's 102,702,600 ns).
        min_period_ns: Smallest enforceable period.
        coalesce_threshold_ns: Allocations shorter than this are merged
            away in post-processing.
        min_piece_ns: Smallest C=D piece semi-partitioning may create.
        strict_latency: Reject (rather than clamp) infeasible latency
            goals.
        policy: Optional co-scheduling constraints (affinity /
            anti-affinity groups; Sec. 5's "encourage or discourage
            co-scheduling" post-processing extension).
        peephole: Run the preemption-reducing peephole pass on every
            core table (Sec. 5's suggested optimization).
        split_compensation: Inflate the utilization of vCPUs that ended
            up split across cores by this fraction, compensating their
            migration overhead (Sec. 7.5's suggested remedy); applied in
            a single replanning retry.
        rotation: Rotates which equal-utilization vCPU gets split when
            splitting is unavoidable (Sec. 7.5's "take a turn" remedy);
            the daemon bumps this on periodic regeneration.
        numa: Prefer placing each VM's vCPUs on a single socket (the
            NUMA-aware extension of Sec. 8); locality is best-effort and
            placement falls back to plain worst-fit when a VM cannot fit
            one socket.
        parallel: Materialize per-core EDF schedules in worker processes
            when the task system is large enough to amortize the pool
            (see ``PARALLEL_MIN_JOBS``); the result is bit-identical to
            the serial path, so this is purely a wall-clock knob.

    The planner memoizes finished core tables keyed by the exact task
    set handed to a core, so replanning an incrementally changed census
    (the daemon's create/teardown pattern, the split-compensation retry,
    periodic regeneration) only re-simulates cores whose task sets
    actually changed.
    """

    def __init__(
        self,
        topology: Union[Topology, int],
        hyperperiod_ns: int = HYPERPERIOD_NS,
        min_period_ns: int = MIN_PERIOD_NS,
        coalesce_threshold_ns: int = DEFAULT_COALESCE_NS,
        min_piece_ns: int = DEFAULT_MIN_PIECE_NS,
        strict_latency: bool = True,
        policy: Optional[CoschedulingPolicy] = None,
        peephole: bool = False,
        split_compensation: float = 0.0,
        rotation: int = 0,
        numa: bool = False,
        parallel: bool = True,
    ) -> None:
        if isinstance(topology, int):
            topology = uniform(topology)
        self.topology = topology
        self.hyperperiod_ns = hyperperiod_ns
        self.min_period_ns = min_period_ns
        self.coalesce_threshold_ns = coalesce_threshold_ns
        self.min_piece_ns = min_piece_ns
        self.strict_latency = strict_latency
        self.policy = policy
        self.peephole = peephole
        self.split_compensation = split_compensation
        self.rotation = rotation
        self.numa = numa
        self.parallel = parallel
        self.last_numa_report: Optional[NumaReport] = None
        self._core_cache: "OrderedDict[Tuple, _CoreRecord]" = OrderedDict()
        self.core_cache_hits = 0
        self.core_cache_misses = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def plan(
        self, workload: Union[Sequence[VMSpec], Sequence[VCpuSpec]]
    ) -> PlanResult:
        """Generate a validated system table for a set of VMs (or vCPUs)."""
        result = self._plan_once(self._as_vcpus(workload))
        if self.split_compensation > 0.0 and result.stats.split_tasks:
            compensated = self._compensate(result)
            if compensated is not None:
                return compensated
        return result

    def _compensate(self, result: PlanResult) -> Optional[PlanResult]:
        """Replan with split vCPUs' utilization inflated (Sec. 7.5)."""
        split_names = [
            name for name in result.vcpus if result.table.is_split(name)
        ]
        inflated: List[VCpuSpec] = []
        for name, spec in result.vcpus.items():
            if name in split_names:
                boosted = min(1.0, spec.utilization * (1 + self.split_compensation))
                inflated.append(
                    VCpuSpec(
                        name=spec.name,
                        utilization=boosted,
                        latency_ns=spec.latency_ns,
                        capped=spec.capped,
                        vm=spec.vm,
                    )
                )
            else:
                inflated.append(spec)
        try:
            retry = self._plan_once(inflated)
        except (AdmissionError, PlanningError):
            # The inflated census no longer fits; keep the original plan
            # (uncompensated splits beat a failed reconfiguration).
            return None
        retry.stats.compensated_vcpus = split_names
        return retry

    def _plan_once(self, vcpus: List[VCpuSpec]) -> PlanResult:
        # Wall time is measured only to report planner generation cost
        # (PlanStats.generation_seconds); it never feeds scheduling state.
        started = time.perf_counter()  # repro: allow[det-wallclock]
        guest_cores = self.topology.guest_cores
        admission = admit_or_raise(
            vcpus, len(guest_cores), self.hyperperiod_ns, self.min_period_ns
        )

        dedicated = [v for v in vcpus if v.needs_dedicated_core]
        shared = [v for v in vcpus if not v.needs_dedicated_core]
        # Dedicated vCPUs claim cores from the tail of the guest pool so
        # the shared pool keeps contiguous low-numbered cores.
        dedicated_cores = guest_cores[len(guest_cores) - len(dedicated) :]
        shared_cores = guest_cores[: len(guest_cores) - len(dedicated)]

        tasks = vcpus_to_tasks(
            shared, self.hyperperiod_ns, self.min_period_ns, self.strict_latency
        )
        assignment, method, cluster_cores, split_count = self._assign(
            tasks, shared_cores
        )

        core_tables, report, peephole_report = self._materialize(
            assignment, cluster_cores
        )
        for vcpu, core in zip(dedicated, dedicated_cores):
            core_tables[core] = CoreTable(
                cpu=core,
                length_ns=self.hyperperiod_ns,
                allocations=[Allocation(0, self.hyperperiod_ns, vcpu.name)],
            )

        system = SystemTable(length_ns=self.hyperperiod_ns, cores=core_tables)
        # Cache-hit cores arrive with their slice tables already built
        # (shared with the cached template); only fresh cores pay.
        system.build_slices(only_missing=True)
        system.validate()

        task_index = {t.name: t for t in tasks}
        for vcpu in dedicated:
            task_index[vcpu.name] = PeriodicTask(
                name=vcpu.name,
                cost=self.hyperperiod_ns,
                period=self.hyperperiod_ns,
                vcpu=vcpu,
            )
        self._check_guarantees(system, vcpus, task_index)

        stats = PlanStats(
            method=method,
            # repro: allow[det-wallclock] -- stats only, never scheduling state
            generation_seconds=time.perf_counter() - started,
            num_vcpus=len(vcpus),
            num_tasks=len(tasks),
            split_tasks=split_count,
            cluster_cores=cluster_cores,
            coalesce=report,
            peephole=peephole_report,
        )
        stats.table_bytes = table_size_bytes(system)
        return PlanResult(
            table=system,
            tasks=task_index,
            vcpus={v.name: v for v in vcpus},
            assignment=assignment,
            admission=admission,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def _as_vcpus(
        self, workload: Union[Sequence[VMSpec], Sequence[VCpuSpec]]
    ) -> List[VCpuSpec]:
        items = list(workload)
        if items and isinstance(items[0], VMSpec):
            return flatten_vcpus(items)
        return list(items)  # type: ignore[arg-type]

    def _assign(
        self, tasks: Sequence[PeriodicTask], cores: Sequence[int]
    ):
        """The three-stage progression; returns assignment and metadata."""
        if not tasks:
            return {core: [] for core in cores}, METHOD_PARTITIONED, [], 0
        if not cores:
            raise PlanningError("no shared cores left for non-dedicated vCPUs")

        if self.policy is not None:
            constrained = constrained_worst_fit(tasks, cores, self.policy)
            if constrained.success:
                return constrained.assignment, METHOD_PARTITIONED, [], 0
            raise PlanningError(
                "co-scheduling constraints could not be satisfied for "
                + ", ".join(t.name for t in constrained.unassigned)
            )

        if self.numa:
            local, numa_report = numa_worst_fit(tasks, cores, self.topology)
            if local.success:
                self.last_numa_report = numa_report
                return local.assignment, METHOD_PARTITIONED, [], 0
            # Fall through: locality is a preference, not a guarantee.

        partitioned = worst_fit_decreasing(tasks, cores, rotation=self.rotation)
        if partitioned.success:
            return partitioned.assignment, METHOD_PARTITIONED, [], 0

        semi = semi_partition(
            tasks,
            cores,
            self.hyperperiod_ns,
            min_piece_ns=self.min_piece_ns,
            rotation=self.rotation,
        )
        if semi.success:
            return (
                semi.assignment,
                METHOD_SEMI_PARTITIONED,
                [],
                semi.split_count,
            )

        # Localized optimal scheduling: restart from the plain partition and
        # cover the leftovers with a minimal DP-WRAP cluster.
        loads = {
            core: sum(t.utilization for t in partitioned.assignment[core])
            for core in cores
        }
        demand = sum(t.utilization for t in partitioned.unassigned)
        cluster = grow_cluster(loads, self.topology.socket_map, demand)
        assignment = {
            core: list(ts)
            for core, ts in partitioned.assignment.items()
            if core not in cluster
        }
        cluster_tasks = list(partitioned.unassigned)
        for core in cluster:
            cluster_tasks.extend(partitioned.assignment[core])
        for core in cluster:
            assignment[core] = []
        assignment["__cluster__"] = cluster_tasks  # type: ignore[index]
        return assignment, METHOD_CLUSTERED, cluster, 0

    def _materialize(self, assignment, cluster_cores):
        """Simulate schedules, rename task pieces to vCPUs, coalesce.

        A finished core table depends only on the (ordered) task set it
        was generated from, so results are memoized: cores whose task
        set is unchanged since an earlier plan reuse the cached table
        (sharing its allocation and slice lists) and skip EDF simulation
        and validation entirely.  Cache misses are materialized serially
        or, for large task systems, in a process pool — both produce
        identical tables.
        """
        report = CoalesceReport()
        core_tables: Dict[int, CoreTable] = {}
        cluster_tasks = assignment.pop("__cluster__", None)
        peephole_report: Optional[PeepholeReport] = None

        cache = self._core_cache
        pending: List[Tuple[int, List[PeriodicTask], Tuple]] = []
        for core, tasks in assignment.items():
            key = self._core_key(tasks)
            record = cache.get(key)
            if record is not None:
                cache.move_to_end(key)
                self.core_cache_hits += 1
                core_tables[core] = _reissue_table(record.table, core)
                report.merge(record.coalesce)
                peephole_report = _merge_peephole(peephole_report, record.peephole)
            else:
                self.core_cache_misses += 1
                pending.append((core, tasks, key))

        for (core, _tasks, key), outcome in zip(
            pending, self._materialize_pending(pending)
        ):
            table, core_coalesce, core_peephole = outcome
            core_tables[core] = table
            report.merge(core_coalesce)
            peephole_report = _merge_peephole(peephole_report, core_peephole)
            cache[key] = _CoreRecord(table, core_coalesce, core_peephole)
            if len(cache) > CORE_CACHE_SIZE:
                cache.popitem(last=False)

        if cluster_tasks is not None:
            cluster_tables = dp_wrap_schedule(
                cluster_tasks, cluster_cores, self.hyperperiod_ns
            )
            for core, table in cluster_tables.items():
                finished, core_report = _rename_and_coalesce(
                    table, self.coalesce_threshold_ns
                )
                report.merge(core_report)
                core_tables[core] = finished
            assignment["__cluster__"] = cluster_tasks
        return core_tables, report, peephole_report

    def _core_key(self, tasks: Sequence[PeriodicTask]) -> Tuple:
        # Order matters: EDF breaks deadline ties by release sequence,
        # which follows task position, so the key must be the ordered
        # tuple (plus every planner knob the materialization reads).
        return (
            tuple((t.name, t.cost, t.period, t.deadline, t.offset) for t in tasks),
            self.hyperperiod_ns,
            self.coalesce_threshold_ns,
            self.peephole,
        )

    def _materialize_pending(self, pending):
        """Materialize cache-miss cores, in processes when large enough."""
        if self.parallel and len(pending) >= 2:
            jobs = sum(
                self.hyperperiod_ns // task.period
                for _core, tasks, _key in pending
                for task in tasks
            )
            if jobs >= PARALLEL_MIN_JOBS:
                results = self._materialize_parallel(pending)
                if results is not None:
                    return results
        return [
            _materialize_core(
                core,
                tasks,
                self.hyperperiod_ns,
                self.peephole,
                self.coalesce_threshold_ns,
            )
            for core, tasks, _key in pending
        ]

    def _materialize_parallel(self, pending):
        """Fan cache-miss cores out to a process pool (None on failure).

        Workers receive plain task tuples (cheap to pickle, no VCpuSpec
        payload) and return finished tables; any pool-level failure —
        unpicklable input, missing multiprocessing support — falls back
        to the serial path, which computes the identical result.
        """
        try:
            from concurrent.futures import ProcessPoolExecutor

            payloads = [
                (
                    core,
                    tuple(
                        (t.name, t.cost, t.period, t.deadline, t.offset)
                        for t in tasks
                    ),
                    self.hyperperiod_ns,
                    self.peephole,
                    self.coalesce_threshold_ns,
                )
                for core, tasks, _key in pending
            ]
            # Pool sizing only: every worker computes the same tables, so
            # the plan is identical whatever cpu_count() reports.
            workers = min(len(pending), os.cpu_count() or 1)  # repro: allow[det-env-branch]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(_materialize_core_worker, payloads))
        except Exception:
            return None

    def _check_guarantees(
        self,
        system: SystemTable,
        vcpus: Sequence[VCpuSpec],
        tasks: Dict[str, PeriodicTask],
    ) -> None:
        """Final guarantee audit: utilization and blackout per vCPU.

        Coalescing may legitimately move up to the threshold per
        allocation boundary, so both checks carry a matching tolerance.
        """
        tolerance = 2 * self.coalesce_threshold_ns
        # One pass over the table yields every vCPU's timeline; the
        # previous per-vCPU allocated_ns/max_blackout_ns scans made this
        # audit quadratic in machine size.
        timelines = system.service_index()
        for vcpu in vcpus:
            task = tasks[vcpu.name]
            timeline = timelines.get(vcpu.name, [])
            allocated = sum(end - start for start, end, _cpu in timeline)
            promised = task.cost * (self.hyperperiod_ns // task.period)
            if allocated + tolerance < promised:
                raise PlanningError(
                    f"{vcpu.name}: table allocates {allocated} ns/cycle, "
                    f"promised {promised}"
                )
            if vcpu.needs_dedicated_core:
                continue
            blackout = system.max_blackout_ns(vcpu.name, timeline=timeline)
            if blackout > vcpu.latency_ns + tolerance:
                raise PlanningError(
                    f"{vcpu.name}: worst-case blackout {blackout} ns exceeds "
                    f"latency goal {vcpu.latency_ns} ns"
                )


def _vcpu_name_of(task_name: Optional[str]) -> Optional[str]:
    """Strip the C=D piece suffix: ``vm0.vcpu0#1`` -> ``vm0.vcpu0``."""
    if task_name is None:
        return None
    return task_name.split("#")[0]


def _rename_and_coalesce(
    table: CoreTable, threshold_ns: int
) -> Tuple[CoreTable, CoalesceReport]:
    """Task-piece names -> vCPU names, then coalesce short allocations."""
    renamed = CoreTable(
        cpu=table.cpu,
        length_ns=table.length_ns,
        allocations=[
            Allocation(a.start, a.end, _vcpu_name_of(a.vcpu))
            for a in table.allocations
        ],
    )
    return coalesce(renamed, threshold_ns)


def _materialize_core(
    core: int,
    tasks: Sequence[PeriodicTask],
    horizon: int,
    peephole: bool,
    threshold_ns: int,
) -> Tuple[CoreTable, CoalesceReport, Optional[PeepholeReport]]:
    """The full per-core pipeline: EDF, validate, peephole, coalesce.

    Module-level (not a method) so the process pool can pickle it by
    reference; everything it needs travels in the arguments.
    """
    table = simulate_edf(tasks, horizon, cpu=core)
    validate_against_tasks(table, tasks)
    peephole_report: Optional[PeepholeReport] = None
    if peephole:
        table, peephole_report = optimize_core(table, tasks)
    finished, coalesce_report = _rename_and_coalesce(table, threshold_ns)
    return finished, coalesce_report, peephole_report


def _materialize_core_worker(payload):
    """Process-pool entry: rebuild tasks from plain tuples and materialize."""
    core, task_tuples, horizon, peephole, threshold_ns = payload
    tasks = [
        PeriodicTask(name=name, cost=cost, period=period, deadline=deadline, offset=offset)
        for name, cost, period, deadline, offset in task_tuples
    ]
    return _materialize_core(core, tasks, horizon, peephole, threshold_ns)


def _reissue_table(template: CoreTable, cpu: int) -> CoreTable:
    """A cached core table re-targeted at ``cpu``.

    Allocation and slice lists are shared with the template — they are
    never mutated in place (rebuilds always assign fresh lists) — so a
    cache hit costs one small object, not a table copy.
    """
    return CoreTable(
        cpu=cpu,
        length_ns=template.length_ns,
        allocations=template.allocations,
        slice_len_ns=template.slice_len_ns,
        slices=template.slices,
        _starts=template._starts,
        _bounds=template._bounds,
    )


def _merge_peephole(
    total: Optional[PeepholeReport], part: Optional[PeepholeReport]
) -> Optional[PeepholeReport]:
    if part is None:
        return total
    if total is None:
        return PeepholeReport(
            swaps_applied=part.swaps_applied,
            swaps_rejected=part.swaps_rejected,
            preemptions_before=part.preemptions_before,
            preemptions_after=part.preemptions_after,
        )
    return PeepholeReport(
        swaps_applied=total.swaps_applied + part.swaps_applied,
        swaps_rejected=total.swaps_rejected + part.swaps_rejected,
        preemptions_before=total.preemptions_before + part.preemptions_before,
        preemptions_after=total.preemptions_after + part.preemptions_after,
    )


def plan_tables(
    workload: Union[Sequence[VMSpec], Sequence[VCpuSpec]],
    topology: Union[Topology, int],
    **planner_kwargs,
) -> PlanResult:
    """One-shot convenience wrapper around :class:`Planner`."""
    return Planner(topology, **planner_kwargs).plan(workload)
