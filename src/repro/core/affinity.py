"""Co-scheduling constraints for the partitioner.

Sec. 5 ("Post-processing"): "one might add a pass to encourage or
discourage co-scheduling of certain VMs, e.g., due to performance-
counter-based profiles or for synchronization purposes."  Because
Tableau's planner owns placement, such policies are one bin-packing
constraint away — this module adds them:

* **affinity** — vCPUs that should share a core (e.g., producer/consumer
  pairs exchanging data through a shared cache);
* **anti-affinity** — vCPUs that must not share a core (e.g., two cache-
  thrashing VMs, or replicas of the same service for fault isolation).

Constraints are enforced during worst-fit-decreasing placement; an
unsatisfiable constraint set fails the partition rather than silently
dropping a rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.partition import UTILIZATION_EPSILON, PartitionResult
from repro.core.tasks import PeriodicTask
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CoschedulingPolicy:
    """Placement rules over vCPU (task) names.

    Attributes:
        affine: Groups whose members must share one core.
        anti_affine: Pairs that may never share a core.
    """

    affine: Tuple[FrozenSet[str], ...] = ()
    anti_affine: Tuple[FrozenSet[str], ...] = ()

    @staticmethod
    def build(
        affine: Iterable[Iterable[str]] = (),
        anti_affine: Iterable[Iterable[str]] = (),
    ) -> "CoschedulingPolicy":
        affine_groups = tuple(frozenset(group) for group in affine)
        anti_pairs = []
        for pair in anti_affine:
            names = frozenset(pair)
            if len(names) != 2:
                raise ConfigurationError(
                    f"anti-affinity rules are pairwise, got {sorted(names)}"
                )
            anti_pairs.append(names)
        policy = CoschedulingPolicy(
            affine=affine_groups, anti_affine=tuple(anti_pairs)
        )
        policy._check_consistency()
        return policy

    def _check_consistency(self) -> None:
        for group in self.affine:
            for pair in self.anti_affine:
                if pair <= group:
                    raise ConfigurationError(
                        f"{sorted(pair)} are both affine (must share a core) "
                        f"and anti-affine (must not) — unsatisfiable"
                    )

    def merged_groups(self, names: Iterable[str]) -> List[Set[str]]:
        """Affinity groups as disjoint sets covering all ``names``.

        Overlapping affine groups are unioned (affinity is transitive:
        if A-B and B-C must co-locate, so must A-C).
        """
        parent: Dict[str, str] = {name: name for name in names}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for group in self.affine:
            members = [m for m in group if m in parent]
            for a, b in zip(members, members[1:]):
                parent[find(a)] = find(b)
        clusters: Dict[str, Set[str]] = {}
        for name in parent:
            clusters.setdefault(find(name), set()).add(name)
        return list(clusters.values())

    def allows(self, group_a: Set[str], group_b: Set[str]) -> bool:
        """May the members of the two groups share a core?"""
        for pair in self.anti_affine:
            first, second = tuple(pair)
            if (first in group_a and second in group_b) or (
                second in group_a and first in group_b
            ):
                return False
        return True


def constrained_worst_fit(
    tasks: Sequence[PeriodicTask],
    cores: Sequence[int],
    policy: CoschedulingPolicy,
    capacities: Optional[Dict[int, float]] = None,
) -> PartitionResult:
    """Worst-fit-decreasing over affinity *groups* under anti-affinity.

    Affine vCPUs are packed as one indivisible unit; a unit is only
    placed on a core whose current residents it is compatible with.
    """
    if capacities is None:
        capacities = {}
    by_name = {t.name: t for t in tasks}
    groups = policy.merged_groups(by_name)

    units = []
    for group in groups:
        members = [by_name[name] for name in sorted(group)]
        units.append((sum(t.utilization for t in members), group, members))
    units.sort(key=lambda u: (-u[0], sorted(u[1])[0]))

    load: Dict[int, float] = {core: 0.0 for core in cores}
    residents: Dict[int, Set[str]] = {core: set() for core in cores}
    assignment: Dict[int, List[PeriodicTask]] = {core: [] for core in cores}
    unassigned: List[PeriodicTask] = []

    for utilization, group, members in units:
        best: Optional[int] = None
        best_load: Optional[float] = None
        for core in cores:
            capacity = capacities.get(core, 1.0)
            if load[core] + utilization > capacity + UTILIZATION_EPSILON:
                continue
            if not policy.allows(group, residents[core]):
                continue
            if best_load is None or load[core] < best_load:
                best = core
                best_load = load[core]
        if best is None:
            unassigned.extend(members)
        else:
            assignment[best].extend(members)
            residents[best] |= group
            load[best] += utilization
    return PartitionResult(assignment=assignment, unassigned=unassigned)
