"""Columnar per-core table materialization (the planner's hot kernel).

This is the planning-side mirror of :mod:`repro.sim.arraycore`: the
per-core pipeline (EDF simulation, budget validation, piece renaming,
adjacent merging, threshold coalescing) rewritten over flat ``array('q')``
columns with integer task handles.  No ``_Job`` objects, no tuple heap —
the ready queue holds packed integers (``deadline * total_jobs + seq``)
and job state lives in three parallel columns indexed by release
sequence number.

The output is bit-identical to the object pipeline in
:func:`repro.core.edf.simulate_edf` + :func:`repro.core.planner`'s rename
and :func:`repro.core.postprocess.coalesce` — the differential suite in
``tests/core/test_columnar_edf.py`` holds both paths equal — but it
builds the final :class:`~repro.core.table.CoreTable` segment columns
directly in the :meth:`~repro.core.table.CoreTable.as_arrays` layout, so
the dispatcher's array engine and the ``'TBLA'`` serializer consume the
planner's own columns with no re-derivation.
"""

from __future__ import annotations

from array import array
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.postprocess import CoalesceReport
from repro.core.table import Allocation, CoreTable
from repro.core.tasks import PeriodicTask
from repro.errors import ConfigurationError, PlanningError
from repro.hotpath import coldpath, hotpath

#: Structural memo for :func:`materialize_core_columns`.  The segment
#: columns are a pure function of the task *shape* — the per-task
#: (period, cost, deadline, offset) columns plus the piece->base-vCPU
#: grouping — never of the vCPU names or the core id, which only label
#: the result.  Cores across a census (and across planner instances)
#: overwhelmingly share shapes: a VM-create burst of identical tiers
#: differs core-to-core only in names, so one EDF simulation serves all
#: of them.  Cached per shape: the final allocation columns, the shared
#: (immutable-by-contract) ``as_arrays`` segment arrays, and the
#: coalesce accounting keyed by base-vCPU *index* so a hit can replay it
#: under the core's actual names.  Only successful materializations are
#: cached — failures re-run so diagnostics carry the right task names.
_SHAPE_CACHE: Dict[tuple, tuple] = {}
_SHAPE_CACHE_SIZE = 1024


@coldpath
def _raise_deadline_miss(
    cpu: int, name: str, deadline: int, now: int, remaining: int
) -> None:
    """Deadline-miss diagnostics, matching :func:`repro.core.edf.simulate_edf`."""
    if remaining == 0:
        raise PlanningError(
            f"cpu{cpu}: {name} missed deadline {deadline} (completed {now})"
        )
    raise PlanningError(
        f"cpu{cpu}: {name} cannot meet deadline "
        f"{deadline} ({remaining} ns left at {now})"
    )


@hotpath
def _edf_kernel(
    packed_releases: List[int],
    costs: List[int],
    deadlines: List[int],
    num_tasks: int,
    horizon: int,
    names: Sequence[str],
    cpu: int,
    seg_ends: array,
    seg_ids: array,
) -> None:
    """EDF simulation over packed-integer columns.

    ``packed_releases`` holds ``release * num_tasks + task_index`` in
    ascending order; the ready heap holds ``deadline * total + seq``.
    Both encodings preserve the object simulator's exact tie-breaking
    ((release, task_index) admission order, (deadline, seq) dispatch
    order) while keeping every heap element a plain integer.  Segments
    merged per task index are appended to ``seg_ends``/``seg_ids`` with
    the start implied by the previous end (gaps carry id -1), which is
    already the ``as_arrays()`` layout the dispatcher plays back.
    """
    total = len(packed_releases)
    job_task = array("q", bytes(8 * total))
    job_rem = array("q", bytes(8 * total))
    job_dl = array("q", bytes(8 * total))
    ready: List[int] = []
    now = 0
    cursor = 0  # end of the last emitted segment (0 = nothing emitted)
    release_index = 0
    seq = 0
    nseg = 0
    while release_index < total or ready:
        while release_index < total:
            packed = packed_releases[release_index]
            release = packed // num_tasks
            if release > now:
                break
            task_index = packed - release * num_tasks
            release_index += 1
            deadline = release + deadlines[task_index]
            job_task[seq] = task_index
            job_rem[seq] = costs[task_index]
            job_dl[seq] = deadline
            heappush(ready, deadline * total + seq)
            seq += 1
        if not ready:
            now = packed_releases[release_index] // num_tasks
            continue
        top = ready[0]
        job = top - (top // total) * total
        if release_index < total:
            next_release = packed_releases[release_index] // num_tasks
        else:
            next_release = horizon
        remaining = job_rem[job]
        run_until = now + remaining
        if next_release < run_until:
            run_until = next_release
        if run_until > now:
            task_index = job_task[job]
            if nseg and seg_ids[nseg - 1] == task_index and cursor == now:
                seg_ends[nseg - 1] = run_until
            else:
                if now > cursor:
                    seg_ends.append(now)
                    seg_ids.append(-1)
                    nseg += 1
                seg_ends.append(run_until)
                seg_ids.append(task_index)
                nseg += 1
            cursor = run_until
        job_rem[job] = remaining - (run_until - now)
        now = run_until
        if job_rem[job] == 0:
            heappop(ready)
            if now > job_dl[job]:
                _raise_deadline_miss(cpu, names[job_task[job]], job_dl[job], now, 0)
        elif now >= job_dl[job]:
            _raise_deadline_miss(
                cpu, names[job_task[job]], job_dl[job], now, job_rem[job]
            )
    if cursor < horizon:
        seg_ends.append(horizon)
        seg_ids.append(-1)


def _packed_releases(
    tasks: Sequence[PeriodicTask], horizon: int
) -> Tuple[List[int], List[int], List[int]]:
    """Per-task columns plus the sorted packed release list."""
    num_tasks = len(tasks)
    costs: List[int] = []
    deadlines: List[int] = []
    packed: List[int] = []
    for index, task in enumerate(tasks):
        if horizon % task.period != 0:
            raise ConfigurationError(
                f"horizon {horizon} is not a multiple of {task.name}'s "
                f"period {task.period}"
            )
        costs.append(task.cost)
        deadlines.append(task.deadline or task.period)
        period = task.period
        offset = task.offset
        for k in range(horizon // period):
            packed.append((k * period + offset) * num_tasks + index)
    packed.sort()
    return packed, costs, deadlines


def _validate_columns(
    seg_ends: array,
    seg_ids: array,
    tasks: Sequence[PeriodicTask],
    horizon: int,
    cpu: int,
) -> None:
    """Columnar twin of :func:`repro.core.table.validate_against_tasks`.

    Splits the gap-free segment columns into per-task interval lists
    (already time-ordered and per-task merged, exactly like
    ``service_intervals``) and runs the identical pointer sweep.
    """
    per_task: List[List[Tuple[int, int]]] = [[] for _ in tasks]
    cursor = 0
    for k in range(len(seg_ends)):
        end = seg_ends[k]
        task_index = seg_ids[k]
        if task_index >= 0:
            per_task[task_index].append((cursor, end))
        cursor = end
    for task_index, task in enumerate(tasks):
        intervals = per_task[task_index]
        job_count = horizon // task.period
        count = len(intervals)
        cursor = 0
        deadline_rel = task.deadline or task.period
        for k in range(job_count):
            release = k * task.period + task.offset
            deadline = release + deadline_rel
            while cursor < count and intervals[cursor][1] <= release:
                cursor += 1
            served = 0
            index = cursor
            while index < count:
                start, end = intervals[index]
                if start >= deadline:
                    break
                lo = release if start < release else start
                hi = deadline if end > deadline else end
                if hi > lo:
                    served += hi - lo
                index += 1
            if served < task.cost:
                raise PlanningError(
                    f"cpu{cpu}: job {k} of {task.name} got {served} ns "
                    f"of {task.cost} ns before its deadline at {deadline}"
                )


def _rename_merge(
    seg_ends: array,
    seg_ids: array,
    base_of: List[int],
    report: CoalesceReport,
) -> Tuple[List[int], List[int], List[int]]:
    """Rename piece ids to base-vCPU ids and merge touching same-id runs.

    Equivalent to the planner's piece-suffix rename followed by the
    first ``merge_adjacent`` pass inside ``coalesce`` (merges are
    counted identically).  Returns mutable parallel lists (idle gaps
    dropped — idle is implicit between allocations).
    """
    starts: List[int] = []
    ends: List[int] = []
    ids: List[int] = []
    cursor = 0
    for k in range(len(seg_ends)):
        end = seg_ends[k]
        piece = seg_ids[k]
        if piece >= 0:
            base = base_of[piece]
            if ids and ids[-1] == base and ends[-1] == cursor:
                ends[-1] = end
                report.merged_count += 1
            else:
                starts.append(cursor)
                ends.append(end)
                ids.append(base)
        cursor = end
    return starts, ends, ids


def _coalesce_columns(
    starts: List[int],
    ends: List[int],
    ids: List[int],
    base_names: List[str],
    threshold_ns: int,
    report: CoalesceReport,
) -> Tuple[List[int], List[int], List[int]]:
    """Columnar replica of :func:`repro.core.postprocess.coalesce`.

    The fixed-point structure (merge pass, first sub-threshold victim,
    absorb/donate/drop, restart) is replicated literally so merge and
    transfer accounting — and therefore the final table — match the
    object pass bit for bit.  The caller is expected to have run the
    first merge pass already (:func:`_rename_merge`).
    """
    while True:
        changed = False
        for index in range(len(starts)):
            if ends[index] - starts[index] >= threshold_ns:
                continue
            length = ends[index] - starts[index]
            vcpu = ids[index]
            prev_touches = index > 0 and ends[index - 1] == starts[index]
            next_touches = (
                index + 1 < len(starts) and starts[index + 1] == ends[index]
            )
            if prev_touches and ids[index - 1] == vcpu:
                ends[index - 1] = ends[index]
            elif next_touches and ids[index + 1] == vcpu:
                starts[index + 1] = starts[index]
            elif prev_touches and next_touches:
                # Donate to the longer neighbour (least relative impact).
                prev_len = ends[index - 1] - starts[index - 1]
                next_len = ends[index + 1] - starts[index + 1]
                if prev_len >= next_len:
                    ends[index - 1] = ends[index]
                    report.record_transfer(
                        base_names[vcpu], base_names[ids[index - 1]], length
                    )
                else:
                    starts[index + 1] = starts[index]
                    report.record_transfer(
                        base_names[vcpu], base_names[ids[index + 1]], length
                    )
            elif prev_touches:
                ends[index - 1] = ends[index]
                report.record_transfer(
                    base_names[vcpu], base_names[ids[index - 1]], length
                )
            elif next_touches:
                starts[index + 1] = starts[index]
                report.record_transfer(
                    base_names[vcpu], base_names[ids[index + 1]], length
                )
            else:
                report.record_transfer(base_names[vcpu], None, length)
                report.dropped_count += 1
            del starts[index]
            del ends[index]
            del ids[index]
            changed = True
            break  # restart the scan on the mutated list
        if not changed:
            return starts, ends, ids
        # Re-merge: an absorption can make two same-vCPU runs adjacent.
        merged_s: List[int] = []
        merged_e: List[int] = []
        merged_i: List[int] = []
        for k in range(len(starts)):
            if merged_i and merged_i[-1] == ids[k] and merged_e[-1] == starts[k]:
                merged_e[-1] = ends[k]
                report.merged_count += 1
            else:
                merged_s.append(starts[k])
                merged_e.append(ends[k])
                merged_i.append(ids[k])
        starts, ends, ids = merged_s, merged_e, merged_i


def _segment_columns(
    starts: List[int],
    ends: List[int],
    ids: List[int],
    horizon: int,
) -> Tuple[array, array, array]:
    """Gap-free ``as_arrays`` columns from the final allocation lists."""
    seg_starts = array("q")
    seg_ends = array("q")
    seg_ids = array("q")
    cursor = 0
    for k in range(len(starts)):
        start = starts[k]
        if start > cursor:
            seg_starts.append(cursor)
            seg_ends.append(start)
            seg_ids.append(-1)
        seg_starts.append(start)
        seg_ends.append(ends[k])
        seg_ids.append(ids[k])
        cursor = ends[k]
    if cursor < horizon:
        seg_starts.append(cursor)
        seg_ends.append(horizon)
        seg_ids.append(-1)
    return seg_starts, seg_ends, seg_ids


def base_names_of(tasks: Sequence[PeriodicTask]) -> Tuple[List[str], List[int]]:
    """Base-vCPU name table + per-task base-id column (piece suffix stripped)."""
    base_names: List[str] = []
    base_index = {}
    base_of: List[int] = []
    for task in tasks:
        base = task.name.split("#")[0]
        existing = base_index.get(base)
        if existing is None:
            existing = len(base_names)
            base_index[base] = existing
            base_names.append(base)
        base_of.append(existing)
    return base_names, base_of


def materialize_core_columns(
    core: int,
    tasks: Sequence[PeriodicTask],
    horizon: int,
    threshold_ns: int,
) -> Tuple[CoreTable, CoalesceReport]:
    """The full columnar per-core pipeline.

    EDF simulation, budget validation, piece renaming and coalescing all
    run over integer columns; :class:`Allocation` objects are built once,
    from the final columns.  The returned table carries its segment
    columns (``_seg_*``) so ``as_arrays()`` and the ``'TBLA'`` serializer
    are zero-copy.
    """
    base_names, base_of = base_names_of(tasks)
    shape = (
        horizon,
        threshold_ns,
        tuple(base_of),
        tuple(
            (task.period, task.cost, task.deadline or task.period, task.offset)
            for task in tasks
        ),
    )
    cached = _SHAPE_CACHE.get(shape)
    if cached is not None:
        starts, ends, ids, seg_columns, lost, gained, merged, dropped = cached
        report = CoalesceReport(
            lost_ns={base_names[k]: v for k, v in lost},
            gained_ns={base_names[k]: v for k, v in gained},
            merged_count=merged,
            dropped_count=dropped,
        )
        allocations = [
            Allocation(starts[k], ends[k], base_names[ids[k]])
            for k in range(len(starts))
        ]
        table = CoreTable(cpu=core, length_ns=horizon, allocations=allocations)
        # Layout was validated when the shape was first materialized.
        table.attach_columns(*seg_columns, base_names)
        return table, report

    names = [task.name for task in tasks]
    packed, costs, deadlines = _packed_releases(tasks, horizon)
    seg_ends = array("q")
    seg_ids = array("q")
    _edf_kernel(
        packed, costs, deadlines, len(tasks), horizon, names, core,
        seg_ends, seg_ids,
    )
    _validate_columns(seg_ends, seg_ids, tasks, horizon, core)
    # Run rename + coalesce with base *indices* standing in for names, so
    # the transfer accounting is name-free and replayable on shape hits.
    index_report = CoalesceReport()
    starts, ends, ids = _rename_merge(seg_ends, seg_ids, base_of, index_report)
    starts, ends, ids = _coalesce_columns(
        starts, ends, ids, list(range(len(base_names))), threshold_ns, index_report
    )
    report = CoalesceReport(
        lost_ns={base_names[k]: v for k, v in index_report.lost_ns.items()},
        gained_ns={base_names[k]: v for k, v in index_report.gained_ns.items()},
        merged_count=index_report.merged_count,
        dropped_count=index_report.dropped_count,
    )
    allocations = [
        Allocation(starts[k], ends[k], base_names[ids[k]])
        for k in range(len(starts))
    ]
    table = CoreTable(cpu=core, length_ns=horizon, allocations=allocations)
    table.validate_layout()
    seg_columns = _segment_columns(starts, ends, ids, horizon)
    table.attach_columns(*seg_columns, base_names)
    if len(_SHAPE_CACHE) >= _SHAPE_CACHE_SIZE:
        _SHAPE_CACHE.clear()
    _SHAPE_CACHE[shape] = (
        tuple(starts),
        tuple(ends),
        tuple(ids),
        seg_columns,
        tuple(index_report.lost_ns.items()),
        tuple(index_report.gained_ns.items()),
        index_report.merged_count,
        index_report.dropped_count,
    )
    return table, report


def core_table_from_columns(
    cpu: int,
    length_ns: int,
    ends: array,
    handles: array,
    names: Sequence[str],
) -> CoreTable:
    """Rebuild a :class:`CoreTable` from gap-free ``(ends, handles)`` columns.

    The inverse of :meth:`CoreTable.as_arrays` for planner-produced
    tables (which never contain explicit idle allocation records):
    every segment with a non-negative handle becomes one allocation.
    Used by the delta table push and the columnar process-pool workers.
    """
    allocations: List[Allocation] = []
    seg_starts = array("q")
    local_names: List[str] = []
    local_ids = {}
    seg_ids = array("q")
    cursor = 0
    for k in range(len(ends)):
        end = ends[k]
        handle = handles[k]
        seg_starts.append(cursor)
        if handle >= 0:
            name = names[handle]
            local = local_ids.get(name)
            if local is None:
                local = len(local_names)
                local_ids[name] = local
                local_names.append(name)
            seg_ids.append(local)
            allocations.append(Allocation(cursor, end, name))
        else:
            seg_ids.append(-1)
        cursor = end
    table = CoreTable(cpu=cpu, length_ns=length_ns, allocations=allocations)
    table.validate_layout()
    table.attach_columns(seg_starts, array("q", ends), seg_ids, local_names)
    return table


def estimate_jobs(tasks: Sequence[PeriodicTask], horizon: int) -> int:
    """Release count of one hyperperiod (the materialization cost driver)."""
    jobs = 0
    for task in tasks:
        jobs += horizon // task.period
    return jobs


__all__ = [
    "base_names_of",
    "core_table_from_columns",
    "estimate_jobs",
    "materialize_core_columns",
]
