"""Worst-fit-decreasing partitioning of periodic tasks onto cores.

The planner's first (and, in practice, almost always sufficient) stage:
statically assign each vCPU-task to one core such that no core is
over-utilized (Sec. 5, "Partitioning").  Worst-fit decreasing — always
placing the next-largest task on the least-utilized core — spreads load
evenly, which both maximizes the headroom available to the second-level
scheduler and leaves room for later VM additions without re-shuffling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heapify, heapreplace
from typing import Dict, List, Optional, Sequence

from repro.core.tasks import PeriodicTask

#: Tolerance for utilization sums; absorbs the <1e-5 over-reservation
#: introduced by rounding task costs up to integer nanoseconds.
UTILIZATION_EPSILON = 1e-9


@dataclass
class PartitionResult:
    """Outcome of a partitioning attempt.

    ``assignment`` maps core id -> tasks (in assignment order); tasks
    that fit nowhere are reported in ``unassigned`` (in decreasing
    utilization order).  ``success`` is True iff everything was placed.
    """

    assignment: Dict[int, List[PeriodicTask]]
    unassigned: List[PeriodicTask] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return not self.unassigned

    def utilization_of(self, core: int) -> float:
        return sum(t.utilization for t in self.assignment.get(core, ()))

    def spread(self) -> float:
        """Max-min core utilization; small values indicate even load."""
        utils = [self.utilization_of(c) for c in self.assignment]
        return max(utils) - min(utils) if utils else 0.0


def worst_fit_decreasing(
    tasks: Sequence[PeriodicTask],
    cores: Sequence[int],
    capacities: Optional[Dict[int, float]] = None,
    rotation: int = 0,
) -> PartitionResult:
    """Partition ``tasks`` onto ``cores`` with the WFD heuristic.

    ``capacities`` optionally lowers a core's usable utilization below
    1.0 (e.g., to reserve dispatcher headroom or keep a core partly free
    for dom0 work); cores default to full capacity.

    ``rotation`` rotates the tie-break order among equal-utilization
    tasks.  Placement quality is unchanged, but *which* task ends up
    unplaceable (and hence split by semi-partitioning) rotates — the
    mechanism behind Sec. 7.5's "periodically re-generate the scheduling
    table to make sure that all vCPUs take a turn being split".

    Implicit-deadline tasks are EDF-schedulable on one core exactly when
    their utilizations sum to at most the capacity, so the fit test here
    is a plain utilization check — no demand-bound analysis needed at
    this stage.
    """
    if capacities is None:
        capacities = {}
    assignment: Dict[int, List[PeriodicTask]] = {core: [] for core in cores}
    unassigned: List[PeriodicTask] = []

    names = sorted(t.name for t in tasks)
    rank = {
        name: (index - rotation) % max(1, len(names))
        for index, name in enumerate(names)
    }
    ordered = sorted(tasks, key=lambda t: (-t.utilization, rank[t.name]))
    if not capacities and cores:
        # Uniform full capacity (the planner's case): the least-loaded
        # core sits at the top of a heap, turning each placement into
        # O(log cores) instead of a full scan — and if *it* cannot take
        # the task, no core can.  Ties break toward the earliest core in
        # ``cores`` (the heap key's position field), matching the scan's
        # strict-< rule, and each core's load accumulates in the same
        # order of additions, so the packing is bit-identical.
        heap = [(0.0, position, core) for position, core in enumerate(cores)]
        heapify(heap)
        for task in ordered:
            utilization = task.utilization
            load_now, position, core = heap[0]
            if load_now + utilization <= 1.0 + UTILIZATION_EPSILON:
                assignment[core].append(task)
                heapreplace(heap, (load_now + utilization, position, core))
            else:
                unassigned.append(task)
        return PartitionResult(assignment=assignment, unassigned=unassigned)

    load: Dict[int, float] = {core: 0.0 for core in cores}
    for task in ordered:
        best_core: Optional[int] = None
        best_load = None
        for core in cores:
            capacity = capacities.get(core, 1.0)
            if load[core] + task.utilization <= capacity + UTILIZATION_EPSILON:
                if best_load is None or load[core] < best_load:
                    best_core = core
                    best_load = load[core]
        if best_core is None:
            unassigned.append(task)
        else:
            assignment[best_core].append(task)
            load[best_core] += task.utilization
    return PartitionResult(assignment=assignment, unassigned=unassigned)


def first_fit_decreasing(
    tasks: Sequence[PeriodicTask],
    cores: Sequence[int],
    capacities: Optional[Dict[int, float]] = None,
) -> PartitionResult:
    """First-fit-decreasing packing, provided for the ablation benchmark.

    FFD concentrates load on low-numbered cores; the paper prefers WFD
    because even spreading benefits the second-level scheduler.  The
    ablation bench (`benchmarks/test_ablation_partitioning.py`) compares
    the two on packability and load spread.
    """
    if capacities is None:
        capacities = {}
    load: Dict[int, float] = {core: 0.0 for core in cores}
    assignment: Dict[int, List[PeriodicTask]] = {core: [] for core in cores}
    unassigned: List[PeriodicTask] = []
    ordered = sorted(tasks, key=lambda t: (-t.utilization, t.name))
    for task in ordered:
        for core in cores:
            capacity = capacities.get(core, 1.0)
            if load[core] + task.utilization <= capacity + UTILIZATION_EPSILON:
                assignment[core].append(task)
                load[core] += task.utilization
                break
        else:
            unassigned.append(task)
    return PartitionResult(assignment=assignment, unassigned=unassigned)
