"""Localized optimal multiprocessor scheduling (the planner's last resort).

If even C=D splitting cannot place every task, Tableau merges a minimal
set of cores into a *cluster* and schedules the cluster with an optimal
multiprocessor algorithm (Sec. 5, "Localized optimal scheduling").  This
module implements DP-WRAP (Levin et al. [39]): time is partitioned at
every job deadline in the cluster, each task receives exactly its fluid
share ``U_i * len`` within each slice, and the per-slice allocations are
laid out across the cluster's cores with McNaughton's wrap-around rule.
DP-WRAP is optimal — it succeeds whenever total utilization does not
exceed the core count — at the price of many migrations, which is why
the planner only ever uses it on small clusters of "close" cores.

Fluid shares are tracked with exact rational arithmetic and materialized
with a floor-with-catch-up rule, which makes each task's cumulative
allocation exact at every one of its deadlines (``U_i * k * T_i`` is an
integer there).  Rounding can momentarily over-subscribe a slice by a
few nanoseconds; the surplus is shaved from tasks that are not at a
deadline boundary, and a final ground-truth validation pass backstops
the whole construction.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.edf import merge_segments
from repro.core.table import CoreTable
from repro.core.tasks import PeriodicTask
from repro.errors import ConfigurationError, PlanningError


def _slice_boundaries(tasks: Sequence[PeriodicTask], horizon: int) -> List[int]:
    """All job deadlines (period multiples) in ``[0, horizon]``."""
    boundaries = {0, horizon}
    for task in tasks:
        if horizon % task.period != 0:
            raise ConfigurationError(
                f"horizon {horizon} not a multiple of {task.name}'s period"
            )
        boundaries.update(range(task.period, horizon + 1, task.period))
    return sorted(boundaries)


def dp_wrap_schedule(
    tasks: Sequence[PeriodicTask],
    cores: Sequence[int],
    horizon: int,
) -> Dict[int, CoreTable]:
    """Schedule implicit-deadline ``tasks`` on a cluster of ``cores``.

    Returns one :class:`CoreTable` per cluster core.  Raises
    :class:`PlanningError` if the cluster is over-utilized or (in
    pathological rounding corner cases) a valid layout cannot be
    materialized in integer nanoseconds.
    """
    if not cores:
        raise ConfigurationError("cluster must contain at least one core")
    for task in tasks:
        if task.deadline != task.period or task.offset != 0:
            raise ConfigurationError(
                f"{task.name}: DP-WRAP requires implicit-deadline tasks "
                f"without offsets"
            )
    m = len(cores)
    total_util = sum(Fraction(t.cost, t.period) for t in tasks)
    if total_util > m:
        raise PlanningError(
            f"cluster of {m} cores over-utilized: {float(total_util):.4f}"
        )

    boundaries = _slice_boundaries(tasks, horizon)
    rates = [Fraction(t.cost, t.period) for t in tasks]
    allocated = [0] * len(tasks)  # cumulative integer ns actually granted
    # Per-core segment lists: (start, end, task_index).
    segments: Dict[int, List[Tuple[int, int, int]]] = {core: [] for core in cores}

    for lo, hi in zip(boundaries, boundaries[1:]):
        length = hi - lo
        allocs = _slice_allocations(tasks, rates, allocated, hi, length, m)
        _mcnaughton_layout(allocs, cores, lo, length, segments)
        for index, amount in enumerate(allocs):
            allocated[index] += amount

    names = [t.name for t in tasks]
    tables: Dict[int, CoreTable] = {}
    for core in cores:
        allocations = merge_segments(segments[core], names)
        table = CoreTable(cpu=core, length_ns=horizon, allocations=allocations)
        table.validate_layout()
        tables[core] = table
    _validate_fluid_deadlines(tasks, tables, horizon)
    return tables


def _slice_allocations(
    tasks: Sequence[PeriodicTask],
    rates: Sequence[Fraction],
    allocated: Sequence[int],
    slice_end: int,
    length: int,
    m: int,
) -> List[int]:
    """Integer ns each task receives in the slice ending at ``slice_end``.

    Floor-with-catch-up: grant ``floor(U_i * slice_end) - allocated_i``.
    At a deadline of task i the fluid target is an exact integer, so the
    floor is exact and every job has its full budget by its deadline.
    """
    allocs: List[int] = []
    for index, task in enumerate(tasks):
        target = rates[index] * slice_end
        grant = int(target) - allocated[index]  # int() floors positive Fractions
        if grant < 0 or grant > length:
            raise PlanningError(
                f"{task.name}: slice grant {grant} ns outside [0, {length}]"
            )
        allocs.append(grant)

    capacity = m * length
    surplus = sum(allocs) - capacity
    if surplus > 0:
        # Rounding overshoot (< one ns per task): shave from tasks that are
        # not at a deadline boundary — their shortfall is repaid by the
        # catch-up rule in the next slice.
        for index, task in enumerate(tasks):
            if surplus <= 0:
                break
            if slice_end % task.period == 0:
                continue  # at its deadline; its grant must stay exact
            shave = min(allocs[index], surplus)
            allocs[index] -= shave
            surplus -= shave
        if surplus > 0:
            raise PlanningError(
                "DP-WRAP could not resolve a rounding overshoot; "
                "cluster is at integral capacity"
            )
    return allocs


def _mcnaughton_layout(
    allocs: Sequence[int],
    cores: Sequence[int],
    slice_start: int,
    length: int,
    segments: Dict[int, List[Tuple[int, int, int]]],
) -> None:
    """McNaughton's wrap-around rule within one slice.

    Tasks are laid end to end on the first core; on overflow the tail
    wraps to the start of the next core's slice.  The wrapped halves of a
    task occupy ``[cursor, length)`` and ``[0, overflow)`` — disjoint in
    time because no per-slice allocation exceeds the slice length.
    """
    core_index = 0
    cursor = 0
    for task_index, amount in enumerate(allocs):
        while amount > 0:
            if core_index >= len(cores):
                raise PlanningError("McNaughton layout overflowed the cluster")
            room = length - cursor
            chunk = min(amount, room)
            core = cores[core_index]
            start = slice_start + cursor
            segments[core].append((start, start + chunk, task_index))
            amount -= chunk
            cursor += chunk
            if cursor == length:
                core_index += 1
                cursor = 0


def _validate_fluid_deadlines(
    tasks: Sequence[PeriodicTask],
    tables: Dict[int, CoreTable],
    horizon: int,
) -> None:
    """Ground truth: every job served in full by its deadline, no overlap."""
    intervals: Dict[str, List[Tuple[int, int]]] = {t.name: [] for t in tasks}
    for table in tables.values():
        for alloc in table.allocations:
            if alloc.vcpu is not None:
                intervals[alloc.vcpu].append((alloc.start, alloc.end))
    for task in tasks:
        windows = sorted(intervals[task.name])
        for (s1, e1), (s2, _e2) in zip(windows, windows[1:]):
            if s2 < e1:
                raise PlanningError(
                    f"{task.name}: parallel execution at {s2} in DP-WRAP layout"
                )
        for k in range(horizon // task.period):
            release = k * task.period
            deadline = release + task.period
            served = sum(
                min(e, deadline) - max(s, release)
                for s, e in windows
                if s < deadline and e > release
            )
            if served < task.cost:
                raise PlanningError(
                    f"{task.name}: job {k} served {served}/{task.cost} ns "
                    f"by deadline {deadline}"
                )


def grow_cluster(
    core_loads: Dict[int, float],
    sockets: Optional[Dict[int, int]],
    demand: float,
) -> List[int]:
    """Pick a minimal set of cores whose combined slack covers ``demand``.

    Mirrors the paper's "merge two close cores, repeat if needed": start
    from the least-loaded core and keep adding the least-loaded remaining
    core — preferring cores on the same socket, since those share a cache
    and migrations between them are cheap — until the cluster's total
    slack reaches the demand.
    """
    remaining = dict(core_loads)
    if not remaining:
        raise PlanningError("no cores available for clustering")
    seed = min(remaining, key=lambda c: (remaining[c], c))
    cluster = [seed]
    slack = 1.0 - remaining.pop(seed)
    while slack < demand and remaining:
        if sockets is not None:
            cluster_sockets = {sockets[c] for c in cluster}
            local = [c for c in remaining if sockets[c] in cluster_sockets]
            pool = local if local else list(remaining)
        else:
            pool = list(remaining)
        chosen = min(pool, key=lambda c: (remaining[c], c))
        cluster.append(chosen)
        slack += 1.0 - remaining.pop(chosen)
    if slack < demand:
        raise PlanningError(
            f"even a cluster of all cores lacks capacity: slack {slack:.4f} "
            f"< demand {demand:.4f}"
        )
    return sorted(cluster)
