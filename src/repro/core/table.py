"""Scheduling-table data structures: allocations, slice tables, lookups.

A Tableau table (Fig. 2 of the paper) is, per physical core, a list of
non-overlapping, time-ordered *allocations* — intervals reserved for a
specific vCPU — plus a *slice table* that divides the cyclic timeline
into fixed-size slices for O(1) dispatch.  The slice length on each core
equals the length of that core's shortest allocation, which guarantees a
slice never overlaps more than two allocations, so a dispatch decision
touches at most two records.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.tasks import PeriodicTask
from repro.errors import ConfigurationError, PlanningError

#: vCPU id used in serialized tables for idle intervals.
IDLE = None


@dataclass(frozen=True)
class Allocation:
    """A half-open interval ``[start, end)`` reserved for one vCPU.

    ``vcpu`` is the vCPU name, or ``None`` for an explicitly recorded
    idle interval (tables normally encode idle implicitly as gaps, but
    post-processing may materialize idle records).
    """

    start: int
    end: int
    vcpu: Optional[str]

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"bad allocation interval [{self.start}, {self.end})"
            )

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass
class CoreTable:
    """The cyclic schedule of one physical core.

    Attributes:
        cpu: Physical core index.
        length_ns: Cycle length (the table hyperperiod).
        allocations: Time-ordered, non-overlapping vCPU reservations.
        slice_len_ns: Fixed slice size for O(1) lookup (set by
            :meth:`build_slices`).
        slices: For each slice, indices of the (at most two) allocations
            it overlaps, as a ``(first, second)`` pair with ``-1`` for
            "none".
    """

    cpu: int
    length_ns: int
    allocations: List[Allocation] = field(default_factory=list)
    slice_len_ns: int = 0
    slices: List[Tuple[int, int]] = field(default_factory=list)
    _starts: List[int] = field(default_factory=list, repr=False)
    #: All allocation boundaries (starts, ends, table length), sorted —
    #: precomputed by :meth:`build_slices` so ``next_boundary`` is a
    #: single bisect instead of a lookup plus a scan.
    _bounds: List[int] = field(default_factory=list, repr=False, compare=False)
    #: Last lookup memo ``(abs_from, abs_to, allocation)``: within that
    #: absolute-time window the lookup answer (and next boundary) cannot
    #: change, so consecutive dispatches in one slot are two integer
    #: compares instead of a divide + slice probe.
    _memo: Optional[Tuple[int, int, Optional[Allocation]]] = field(
        default=None, repr=False, compare=False
    )
    #: Gap-free segment columns in the :meth:`as_arrays` layout with
    #: *core-local* handles (indices into :attr:`_seg_names`; -1 = idle).
    #: Attached by the columnar planner kernels; derived lazily from the
    #: allocation list for every other table.  Sharing them is what makes
    #: plan transport zero-copy: ``as_arrays`` only translates local
    #: handles to a caller's global ids, it never rescans allocations.
    _seg_starts: Optional[array] = field(default=None, repr=False, compare=False)
    _seg_ends: Optional[array] = field(default=None, repr=False, compare=False)
    _seg_local: Optional[array] = field(default=None, repr=False, compare=False)
    _seg_names: Optional[List[str]] = field(default=None, repr=False, compare=False)
    #: Last ``as_arrays`` answer, keyed by the local->global handle map.
    _arrays_memo: Optional[Tuple[Tuple[int, ...], Tuple[array, array, array]]] = (
        field(default=None, repr=False, compare=False)
    )
    #: Shortest allocation, cached at column-attach time (tables with
    #: columns are planner-produced and never mutated afterwards).
    _min_alloc_ns: Optional[int] = field(default=None, repr=False, compare=False)

    def __getstate__(self) -> Dict[str, object]:
        # Transient lookup memos are dropped from pickles (plan-store
        # entries, process-pool transfers); the segment columns travel.
        state = dict(self.__dict__)
        state["_memo"] = None
        state["_arrays_memo"] = None
        return state

    def validate_layout(self) -> None:
        """Check ordering, bounds, and non-overlap of the allocations."""
        previous_end = 0
        for alloc in self.allocations:
            if alloc.start < previous_end:
                raise PlanningError(
                    f"cpu{self.cpu}: allocation [{alloc.start}, {alloc.end}) "
                    f"overlaps its predecessor ending at {previous_end}"
                )
            if alloc.end > self.length_ns:
                raise PlanningError(
                    f"cpu{self.cpu}: allocation [{alloc.start}, {alloc.end}) "
                    f"exceeds table length {self.length_ns}"
                )
            previous_end = alloc.end

    @property
    def busy_ns(self) -> int:
        return sum(a.length for a in self.allocations if a.vcpu is not None)

    @property
    def utilization(self) -> float:
        return self.busy_ns / self.length_ns

    def min_allocation_ns(self) -> Optional[int]:
        if self._min_alloc_ns is not None:
            return self._min_alloc_ns
        lengths = [a.length for a in self.allocations]
        return min(lengths) if lengths else None

    def build_slices(self, min_slice_len_ns: int = 1) -> None:
        """Construct the O(1) slice table.

        The slice length is the shortest allocation on this core (the
        paper's rule), floored at ``min_slice_len_ns`` as a memory
        safeguard for degenerate tables.  When the floor is applied the
        at-most-two-allocations invariant may no longer hold and lookups
        transparently fall back to binary search for affected slices.
        """
        self._memo = None
        shortest = self.min_allocation_ns()
        if shortest is None:
            # An always-idle core: one slice covering the whole table.
            self.slice_len_ns = self.length_ns
            self.slices = [(-1, -1)]
            self._starts = []
            self._bounds = [self.length_ns]
            return
        self.slice_len_ns = max(shortest, min_slice_len_ns)
        slice_count = -(-self.length_ns // self.slice_len_ns)  # ceil div
        slices: List[Tuple[int, int]] = []
        alloc_index = 0
        allocations = self.allocations
        for s in range(slice_count):
            lo = s * self.slice_len_ns
            hi = min(lo + self.slice_len_ns, self.length_ns)
            # Advance past allocations that end at or before this slice.
            while alloc_index < len(allocations) and allocations[alloc_index].end <= lo:
                alloc_index += 1
            overlapping: List[int] = []
            j = alloc_index
            while j < len(allocations) and allocations[j].start < hi:
                overlapping.append(j)
                j += 1
            if len(overlapping) > 2:
                # Only possible when the min_slice_len floor kicked in.
                overlapping = [-2, -2]  # sentinel: binary-search fallback
            first = overlapping[0] if overlapping else -1
            second = overlapping[1] if len(overlapping) > 1 else -1
            slices.append((first, second))
        self.slices = slices
        self._starts = [a.start for a in allocations]
        bounds = {a.start for a in allocations}
        bounds.update(a.end for a in allocations)
        bounds.add(self.length_ns)
        self._bounds = sorted(bounds)

    def lookup(self, now_ns: int) -> Optional[Allocation]:
        """O(1) dispatch lookup: the allocation covering ``now_ns``, if any.

        ``now_ns`` may be any absolute time; it is reduced modulo the
        table length, exactly as the dispatcher does.  The answer for
        the enclosing slot is memoized, so repeated lookups within one
        slot (the common case: a core re-picking inside its current
        allocation) skip the modulo and slice probe entirely.
        """
        memo = self._memo
        if memo is not None and memo[0] <= now_ns < memo[1]:
            return memo[2]
        if not self.slices:
            self.build_slices()
        offset = now_ns % self.length_ns
        base = now_ns - offset
        index = offset // self.slice_len_ns
        if index >= len(self.slices):
            index = len(self.slices) - 1
        first, second = self.slices[index]
        if first == -2:
            found = self._lookup_slow(offset)
        else:
            found = None
            for alloc_index in (first, second):
                if alloc_index < 0:
                    continue
                alloc = self.allocations[alloc_index]
                if alloc.start <= offset < alloc.end:
                    found = alloc
                    break
        if found is not None:
            self._memo = (base + found.start, base + found.end, found)
        else:
            # Idle until the next allocation begins (or the table wraps).
            nxt = bisect_right(self._starts, offset)
            until = self._starts[nxt] if nxt < len(self._starts) else self.length_ns
            self._memo = (now_ns, base + until, None)
        return found

    def next_boundary(self, now_ns: int) -> int:
        """Absolute time of the next allocation start/end after ``now_ns``.

        The dispatcher programs its timer to this instant: either the
        current allocation expires or a new one begins (or the table
        wraps).  Always strictly greater than ``now_ns``.
        """
        memo = self._memo
        if memo is not None and memo[0] <= now_ns < memo[1]:
            return memo[1]
        if not self.slices:
            self.build_slices()
        offset = now_ns % self.length_ns
        bounds = self._bounds
        return now_ns - offset + bounds[bisect_right(bounds, offset)]

    def _lookup_slow(self, offset: int) -> Optional[Allocation]:
        index = bisect_right(self._starts, offset) - 1
        if index >= 0:
            alloc = self.allocations[index]
            if alloc.start <= offset < alloc.end:
                return alloc
        return None

    def service_intervals(self, vcpu: str) -> List[Tuple[int, int]]:
        return [(a.start, a.end) for a in self.allocations if a.vcpu == vcpu]

    def attach_columns(
        self,
        seg_starts: array,
        seg_ends: array,
        seg_local: array,
        seg_names: List[str],
    ) -> None:
        """Install planner-produced segment columns (zero-copy transport).

        ``seg_local`` holds indices into ``seg_names`` (-1 = idle); the
        columns must be the exact :meth:`as_arrays` flattening of
        :attr:`allocations`.  The shortest-allocation length is cached
        here too, so slice sizing and the serialized-size estimate never
        rescan the allocation list.
        """
        self._seg_starts = seg_starts
        self._seg_ends = seg_ends
        self._seg_local = seg_local
        self._seg_names = seg_names
        self._arrays_memo = None
        shortest: Optional[int] = None
        for index in range(len(seg_local)):
            if seg_local[index] < 0:
                continue
            length = seg_ends[index] - seg_starts[index]
            if shortest is None or length < shortest:
                shortest = length
        self._min_alloc_ns = shortest

    def _derive_columns(self) -> None:
        """Build the local-handle segment columns from the allocations."""
        starts = array("q")
        ends = array("q")
        local = array("q")
        names: List[str] = []
        ids: Dict[str, int] = {}
        cursor = 0
        for alloc in self.allocations:
            if alloc.start > cursor:
                starts.append(cursor)
                ends.append(alloc.start)
                local.append(-1)
            starts.append(alloc.start)
            ends.append(alloc.end)
            if alloc.vcpu is None:
                local.append(-1)
            else:
                handle = ids.get(alloc.vcpu)
                if handle is None:
                    handle = len(names)
                    ids[alloc.vcpu] = handle
                    names.append(alloc.vcpu)
                local.append(handle)
            cursor = alloc.end
        if cursor < self.length_ns:
            starts.append(cursor)
            ends.append(self.length_ns)
            local.append(-1)
        self._seg_starts = starts
        self._seg_ends = ends
        self._seg_local = local
        self._seg_names = names

    def as_arrays(
        self, vcpu_id: Callable[[str], int]
    ) -> Tuple[array, array, array]:
        """Flatten the cyclic schedule into full-coverage segment columns.

        Returns three parallel ``array('q')`` columns ``(starts, ends,
        handles)`` covering ``[0, length_ns)`` without gaps: every
        allocation becomes one segment carrying ``vcpu_id(name)`` (its
        integer handle), and every idle interval — gaps between
        allocations, the leading gap, the trailing gap, explicit idle
        records — becomes a segment with handle ``-1``.  This is the
        compact structure-of-arrays encoding the array dispatch engine
        (:mod:`repro.sim.arraycore`) plays back with a cursor instead of
        probing the slice table.

        The flattening is served from cached segment columns: planner
        tables carry them from materialization (zero-copy), other tables
        derive them once, and repeat calls with the same handle mapping
        return the identical array objects.
        """
        if self._seg_names is None:
            self._derive_columns()
        names = self._seg_names
        assert names is not None  # for mypy; _derive_columns always sets it
        mapping = tuple(vcpu_id(name) for name in names)
        memo = self._arrays_memo
        if memo is not None and memo[0] == mapping:
            return memo[1]
        starts = self._seg_starts
        ends = self._seg_ends
        local = self._seg_local
        assert starts is not None and ends is not None and local is not None
        identity = True
        for index, handle in enumerate(mapping):
            if handle != index:
                identity = False
                break
        if identity:
            handles = local
        else:
            handles = array("q", local)
            for index in range(len(handles)):
                handle = handles[index]
                if handle >= 0:
                    handles[index] = mapping[handle]
        result = (starts, ends, handles)
        self._arrays_memo = (mapping, result)
        return result


@dataclass
class SystemTable:
    """The complete scheduling table for a machine.

    Attributes:
        length_ns: Common cycle length of all core tables.
        cores: Per-core tables, indexed by physical core id.
        vcpu_names: Stable vCPU name -> integer id mapping used for
            serialization and by the dispatcher's compact encoding.
        home_cores: For each vCPU, the cores it has allocations on, in
            time order of its first allocation (the first entry is its
            primary core for second-level scheduling; migrating vCPUs
            have several entries and use the trailing-core policy).
    """

    length_ns: int
    cores: Dict[int, CoreTable]
    vcpu_names: List[str] = field(default_factory=list)
    home_cores: Dict[str, List[int]] = field(default_factory=dict)
    _vcpu_ids: Dict[str, int] = field(default_factory=dict, repr=False, compare=False)
    #: Cached :meth:`as_arrays` answer — a system table's allocations are
    #: immutable after planning, so repeated table switches (and the
    #: ``'TBLA'`` serializer) reuse the same column objects.
    _arrays_cache: Optional[Dict[int, Tuple[array, array, array]]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.vcpu_names or not self.home_cores:
            self._rebuild_index()

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["_arrays_cache"] = None
        return state

    def _rebuild_index(self) -> None:
        names: List[str] = []
        homes: Dict[str, List[Tuple[int, int]]] = {}
        for cpu, table in sorted(self.cores.items()):
            for alloc in table.allocations:
                if alloc.vcpu is None:
                    continue
                if alloc.vcpu not in homes:
                    names.append(alloc.vcpu)
                    homes[alloc.vcpu] = []
                entries = homes[alloc.vcpu]
                if all(c != cpu for _, c in entries):
                    entries.append((alloc.start, cpu))
        self.vcpu_names = names
        self._vcpu_ids = {name: i for i, name in enumerate(names)}
        self.home_cores = {
            name: [cpu for _, cpu in sorted(entries)]
            for name, entries in homes.items()
        }

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def vcpu_id(self, name: str) -> int:
        ids = self._vcpu_ids
        if len(ids) != len(self.vcpu_names):
            # vcpu_names was supplied (or replaced) directly, e.g. by the
            # deserializer; derive the reverse mapping once.
            ids = {n: i for i, n in enumerate(self.vcpu_names)}
            self._vcpu_ids = ids
        try:
            return ids[name]
        except KeyError:
            raise ValueError(f"{name!r} is not in the table") from None

    def core_of(self, vcpu: str) -> int:
        """Primary core of a vCPU (the only core, for partitioned vCPUs)."""
        return self.home_cores[vcpu][0]

    def as_arrays(self) -> Dict[int, Tuple[array, array, array]]:
        """Per-core flattened segment columns (see :meth:`CoreTable.as_arrays`).

        Handles index :attr:`vcpu_names` (``-1`` = idle), so consumers can
        resolve them against any name-keyed registry.
        """
        if self._arrays_cache is None:
            self._arrays_cache = {
                cpu: table.as_arrays(self.vcpu_id)
                for cpu, table in self.cores.items()
            }
        return self._arrays_cache

    def is_split(self, vcpu: str) -> bool:
        return len(self.home_cores.get(vcpu, ())) > 1

    def allocated_ns(self, vcpu: str) -> int:
        return sum(
            a.length
            for table in self.cores.values()
            for a in table.allocations
            if a.vcpu == vcpu
        )

    def utilization_of(self, vcpu: str) -> float:
        return self.allocated_ns(vcpu) / self.length_ns

    def service_timeline(self, vcpu: str) -> List[Tuple[int, int, int]]:
        """All ``(start, end, cpu)`` service intervals of a vCPU, time-ordered."""
        intervals = [
            (start, end, cpu)
            for cpu, table in self.cores.items()
            for (start, end) in table.service_intervals(vcpu)
        ]
        intervals.sort()
        return intervals

    def service_index(self) -> Dict[str, List[Tuple[int, int, int]]]:
        """Per-vCPU service timelines, built in one pass over the table.

        Equivalent to calling :meth:`service_timeline` for every vCPU,
        but O(total allocations) instead of O(vCPUs × allocations) —
        the planner's guarantee audit iterates every vCPU, so the
        per-query rescan was quadratic in machine size.
        """
        index: Dict[str, List[Tuple[int, int, int]]] = {}
        for cpu, table in self.cores.items():
            for alloc in table.allocations:
                if alloc.vcpu is not None:
                    index.setdefault(alloc.vcpu, []).append(
                        (alloc.start, alloc.end, cpu)
                    )
        for intervals in index.values():
            intervals.sort()
        return index

    def max_blackout_ns(
        self,
        vcpu: str,
        timeline: Optional[List[Tuple[int, int, int]]] = None,
    ) -> int:
        """Longest service gap of a vCPU over the cyclic schedule.

        Computed over two consecutive table cycles so the wrap-around gap
        is included; this is the quantity the planner promises to keep
        below the vCPU's latency goal L.  Pass ``timeline`` (an entry of
        :meth:`service_index`) to skip the per-call table scan.
        """
        intervals = timeline if timeline is not None else self.service_timeline(vcpu)
        if not intervals:
            return 2 * self.length_ns
        merged: List[Tuple[int, int]] = []
        for start, end, _cpu in intervals:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        worst = 0
        for (_, prev_end), (next_start, _) in zip(merged, merged[1:]):
            worst = max(worst, next_start - prev_end)
        # Wrap-around gap between the last interval and the first one of
        # the next cycle.
        wrap = (merged[0][0] + self.length_ns) - merged[-1][1]
        return max(worst, wrap)

    def overlapping_service(self) -> List[Tuple[str, int, int]]:
        """Detect any instant where a vCPU is scheduled on two cores at once.

        Returns offending ``(vcpu, time, time)`` witnesses; must be empty
        for a valid table (split subtasks are constructed to never run in
        parallel).
        """
        witnesses: List[Tuple[str, int, int]] = []
        by_vcpu: Dict[str, List[Tuple[int, int]]] = {}
        for cpu, table in self.cores.items():
            for alloc in table.allocations:
                if alloc.vcpu is None:
                    continue
                by_vcpu.setdefault(alloc.vcpu, []).append((alloc.start, alloc.end))
        for vcpu, intervals in by_vcpu.items():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                if s2 < e1:
                    witnesses.append((vcpu, s2, min(e1, e2)))
        return witnesses

    def build_slices(self, min_slice_len_ns: int = 1, only_missing: bool = False) -> None:
        """Build per-core slice tables.

        With ``only_missing`` cores whose slice table already exists are
        skipped — the planner uses this so memoized core tables (whose
        slices were built when first materialized) are not rebuilt on
        every replan.  Allocation lists are never mutated after slices
        are built, so an existing slice table is always consistent.
        """
        for table in self.cores.values():
            if only_missing and table.slices:
                continue
            table.build_slices(min_slice_len_ns)

    def validate(self) -> None:
        """Structural validation: layout, lengths, and no parallel service."""
        for cpu, table in self.cores.items():
            if table.length_ns != self.length_ns:
                raise PlanningError(
                    f"cpu{cpu}: table length {table.length_ns} != system "
                    f"length {self.length_ns}"
                )
            table.validate_layout()
        overlaps = self.overlapping_service()
        if overlaps:
            vcpu, start, end = overlaps[0]
            raise PlanningError(
                f"vCPU {vcpu} scheduled on two cores during [{start}, {end})"
            )


def validate_against_tasks(
    table: CoreTable,
    tasks: Sequence[PeriodicTask],
    tolerance_ns: int = 0,
) -> None:
    """Check that every job of every task receives its budget by its deadline.

    This is the planner's ground-truth verification pass: regardless of
    which generation technique produced the table (EDF simulation, C=D
    splitting, DP-WRAP), the result must serve each job of task
    ``(C, D, T, offset)`` at least ``C - tolerance`` ns within
    ``[release, release + D)``.

    Jobs are checked with a single pointer sweep over the task's
    time-ordered intervals: releases are monotonic, so the cursor only
    advances and the pass is O(jobs + intervals) per task rather than
    O(jobs × intervals).
    """
    for task in tasks:
        intervals = table.service_intervals(task.name)
        intervals.sort()  # the sweep requires start order; usually a no-op
        job_count = table.length_ns // task.period
        count = len(intervals)
        cursor = 0
        for k in range(job_count):
            release = k * task.period + task.offset
            deadline = release + task.deadline
            while cursor < count and intervals[cursor][1] <= release:
                cursor += 1
            served = 0
            index = cursor
            while index < count:
                start, end = intervals[index]
                if start >= deadline:
                    break
                lo = release if start < release else start
                hi = deadline if end > deadline else end
                if hi > lo:
                    served += hi - lo
                index += 1
            if served + tolerance_ns < task.cost:
                raise PlanningError(
                    f"cpu{table.cpu}: job {k} of {task.name} got {served} ns "
                    f"of {task.cost} ns before its deadline at {deadline}"
                )
