"""Machine topology descriptions shared by the planner and the simulator.

The evaluation platforms in the paper are a 16-core, 2-socket Xeon
E5-2667 and a 48-core, 4-socket Xeon E7-8857; both are provided as
ready-made constructors.  Topology matters in two places: the planner
prefers clustering cores that share a socket (cheap migrations), and the
simulator's overhead model makes cross-socket operations — and RTDS's
global runqueue lock — more expensive as the socket count grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.core.params import CoreId


@dataclass(frozen=True)
class Topology:
    """A multicore machine: cores grouped into sockets.

    Attributes:
        sockets: Number of processor sockets.
        cores_per_socket: Cores on each socket.
        reserved_cores: Core ids set aside for the control plane (dom0);
            the planner never places guest vCPUs there, mirroring the
            paper's setup of dedicating four cores to dom0.
        frequency_ghz: Nominal clock, used to convert modelled cycle
            counts into nanoseconds in the overhead model.
    """

    sockets: int
    cores_per_socket: int
    reserved_cores: Tuple[int, ...] = ()
    frequency_ghz: float = 3.2
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ConfigurationError("topology needs at least one core")
        bad = [c for c in self.reserved_cores if not 0 <= c < self.num_cores]
        if bad:
            raise ConfigurationError(f"reserved cores out of range: {bad}")
        if len(self.reserved_cores) >= self.num_cores:
            raise ConfigurationError("cannot reserve every core for dom0")

    @property
    def num_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def guest_cores(self) -> List["CoreId"]:
        """Cores available to guest vCPUs (everything not reserved)."""
        # Deferred import: repro.core.planner imports this module, so a
        # module-level import of repro.core.params would be circular.
        from repro.core.params import CoreId

        reserved = set(self.reserved_cores)
        return [CoreId(c) for c in range(self.num_cores) if c not in reserved]

    def socket_of(self, core: int) -> int:
        if not 0 <= core < self.num_cores:
            raise ConfigurationError(f"core {core} out of range")
        return core // self.cores_per_socket

    @property
    def socket_map(self) -> Dict[int, int]:
        return {c: self.socket_of(c) for c in range(self.num_cores)}

    def same_socket(self, a: int, b: int) -> bool:
        return self.socket_of(a) == self.socket_of(b)

    def cores_of_socket(self, socket: int) -> List[int]:
        start = socket * self.cores_per_socket
        return list(range(start, start + self.cores_per_socket))


def xeon_16core(reserved_for_dom0: int = 4) -> Topology:
    """The paper's main platform: 2 sockets x 8 cores, 3.2 GHz E5-2667."""
    return Topology(
        sockets=2,
        cores_per_socket=8,
        reserved_cores=tuple(range(reserved_for_dom0)),
        frequency_ghz=3.2,
        name="xeon-e5-2667-16c",
    )


def xeon_48core(reserved_for_dom0: int = 4) -> Topology:
    """The scalability platform: 4 sockets x 12 cores, E7-8857."""
    return Topology(
        sockets=4,
        cores_per_socket=12,
        reserved_cores=tuple(range(reserved_for_dom0)),
        frequency_ghz=3.0,
        name="xeon-e7-8857-48c",
    )


def uniform(num_cores: int, sockets: int = 1, name: str = "uniform") -> Topology:
    """A simple test topology with no reserved cores."""
    if num_cores % sockets != 0:
        raise ConfigurationError(
            f"{num_cores} cores do not divide evenly into {sockets} sockets"
        )
    return Topology(
        sockets=sockets,
        cores_per_socket=num_cores // sockets,
        name=name,
    )
