"""Command-line interface: ``tableau-repro`` / ``python -m repro``.

Subcommands map onto the paper's artifacts:

* ``plan``      — generate and describe a scheduling table (Secs. 5-6);
* ``overheads`` — reproduce Table 1 or 2;
* ``delay``     — reproduce a Fig. 5/6 cell (intrinsic latency or ping);
* ``web``       — reproduce a Fig. 7/8 operating point;
* ``scaling``   — reproduce the Fig. 3/4 planner sweeps;
* ``report``    — run the full claim checklist (paper vs. measured);
* ``chaos``     — run the stack under runtime fault injection with the
  health layer (watchdogs, (U, L) monitors, quarantine, recovery);
* ``serve``     — run the scheduler-as-a-service control plane under
  streaming tenant churn and report service-level metrics; with
  ``--journal`` the run is crash-recoverable (``--crash-plan`` arms
  seeded crashpoints, ``--recover`` replays the WAL after a crash);
* ``fsck``      — scan an on-disk plan store, quarantine corrupt
  entries and reclaim orphaned temp files.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import MS, Planner, make_vm
from repro.experiments import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    format_sweep,
    format_table,
    full_sweep,
    intrinsic_latency,
    overhead_table,
    ping_latency,
    run_web_load,
    schedulers_for,
)
from repro.topology import Topology, uniform, xeon_16core, xeon_48core
from repro.workloads import KIB


def _topology(name: str) -> Topology:
    if name == "16core":
        return xeon_16core()
    if name == "48core":
        return xeon_48core()
    return uniform(int(name))


def cmd_plan(args: argparse.Namespace) -> int:
    topology = _topology(args.topology)
    vms = [
        make_vm(f"vm{i:03d}", args.utilization, int(args.latency_ms * MS))
        for i in range(args.vms)
    ]
    result = Planner(topology).plan(vms)
    stats = result.stats
    print(
        f"method={stats.method} generation={stats.generation_seconds * 1e3:.1f}ms "
        f"table={stats.table_bytes / 1024:.1f}KiB splits={stats.split_tasks}"
    )
    task = result.task_of(vms[0].vcpus[0].name)
    print(
        f"per-vCPU reservation: {task.cost / MS:.3f}ms every "
        f"{task.period / MS:.3f}ms; worst blackout "
        f"{result.table.max_blackout_ns(task.name) / MS:.3f}ms "
        f"(goal {args.latency_ms}ms)"
    )
    if args.verbose:
        for cpu in sorted(result.table.cores):
            table = result.table.cores[cpu]
            print(f"  pCPU {cpu}: {len(table.allocations)} allocations, "
                  f"{table.utilization:.1%} reserved")
    return 0


def cmd_overheads(args: argparse.Namespace) -> int:
    topology = _topology(args.topology)
    paper = PAPER_TABLE2 if topology.num_cores > 16 else PAPER_TABLE1
    rows = overhead_table(topology, duration_s=args.seconds)
    print(format_table(rows, paper))
    return 0


def cmd_delay(args: argparse.Namespace) -> int:
    capped = not args.uncapped
    for scheduler in schedulers_for(capped):
        if args.probe == "intrinsic":
            result = intrinsic_latency(
                scheduler, capped, args.background, duration_s=args.seconds
            )
            print(
                f"{scheduler:>9s}: max {result.max_delay_ms:7.2f} ms, "
                f"mean {result.mean_delay_ms:6.2f} ms"
            )
        else:
            result = ping_latency(
                scheduler, capped, args.background, duration_s=args.seconds
            )
            print(
                f"{scheduler:>9s}: avg {result.avg_ms:7.2f} ms, "
                f"max {result.max_ms:7.2f} ms"
            )
    return 0


def cmd_web(args: argparse.Namespace) -> int:
    capped = not args.uncapped
    for scheduler in schedulers_for(capped):
        result = run_web_load(
            scheduler,
            args.rate,
            args.size_kib * KIB,
            capped=capped,
            background=args.background,
            duration_s=args.seconds,
        )
        point = result.point
        print(
            f"{scheduler:>9s}: achieved {point.achieved_rate:8.1f} req/s, "
            f"mean {point.latency.mean_ms:8.2f} ms, "
            f"p99 {point.latency.p99_ms:8.2f} ms, "
            f"NIC {result.nic_utilization:.1%}"
        )
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    points = full_sweep(repetitions=args.repetitions)
    print(format_sweep(points))
    if args.csv:
        from repro.analysis import scaling_rows, write_csv

        count = write_csv(scaling_rows(points), args.csv)
        print(f"wrote {count} rows to {args.csv}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import generate_report

    print(generate_report(duration_s=args.seconds))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import runtime_preset
    from repro.health import run_chaos
    from repro.metrics import chaos_report_json, format_chaos_report

    faults = (
        None
        if args.fault_plan == "none"
        else runtime_preset(args.fault_plan, seed=args.seed)
    )
    result = run_chaos(
        faults,
        seconds=args.seconds,
        seed=args.seed,
        topology=_topology(args.topology),
        health=args.health,
        strict_audit=args.strict_audit,
        engine=args.engine,
    )
    print(format_chaos_report(result))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(chaos_report_json(result) + "\n")
        print(f"wrote {args.report}")
    return 0 if result.audit_clean else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    import json

    from repro.campaign import (
        format_campaign,
        load_matrix,
        run_campaign,
        write_aggregate,
    )

    matrix = load_matrix(args.matrix)
    if args.engine is not None:
        from dataclasses import replace

        matrix = replace(matrix, engines=(args.engine,))
    result = run_campaign(
        matrix,
        workers=args.workers,
        cache_dir=args.cache_dir,
        log_path=args.log,
        resume=args.resume,
        shard_timeout_s=args.shard_timeout,
    )
    print(format_campaign(result))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(result.report, indent=2, sort_keys=True) + "\n"
            )
        print(f"wrote {args.report}")
    if args.aggregate:
        write_aggregate(result.aggregate, args.aggregate)
        print(f"wrote {args.aggregate}")
    return 0 if result.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.core import PlanStore
    from repro.faults import SimulatedCrash, crashes_armed, parse_crash_plan
    from repro.metrics import (
        format_service_report,
        service_report,
        service_report_json,
    )
    from repro.service import (
        ChurnConfig,
        SchedulerService,
        ServiceConfig,
        ServiceJournal,
        resume_service,
        run_service,
    )

    if args.hours is not None:
        seconds = args.hours * 3600.0
    else:
        seconds = args.seconds
    churn = ChurnConfig(
        seed=args.seed,
        arrival_rate_per_s=args.arrival_rate,
        target_population=args.population,
    )
    config = ServiceConfig(batch_window_ms=args.batch_window_ms)
    if args.queue_limit is not None:
        config = replace(config, queue_limit=args.queue_limit)
    store = PlanStore(args.store) if args.store else None
    if args.journal is None and (args.recover or args.crash_plan):
        print(
            "serve: --recover and --crash-plan require --journal",
            file=sys.stderr,
        )
        return 2
    journal = None
    if args.journal is not None:
        journal = ServiceJournal(args.journal)
        if journal.healed_bytes:
            print(
                f"journal: healed {journal.healed_bytes} torn-tail "
                f"byte(s) in {args.journal}",
                file=sys.stderr,
            )
        if journal.records and not args.recover:
            print(
                f"serve: journal {args.journal} already holds "
                f"{len(journal.records)} record(s); replay it with "
                "--recover or point --journal at a fresh path",
                file=sys.stderr,
            )
            journal.close()
            return 2
    plan = (
        parse_crash_plan(args.crash_plan, seed=args.seed)
        if args.crash_plan
        else None
    )
    try:
        with crashes_armed(plan):
            if args.recover:
                service = SchedulerService.recover(
                    _topology(args.topology),
                    journal,
                    config=config,
                    scheduler=args.scheduler,
                    store=store,
                )
                resume_service(service, seconds, churn=churn)
            else:
                service = run_service(
                    _topology(args.topology),
                    duration_s=seconds,
                    churn=churn,
                    config=config,
                    scheduler=args.scheduler,
                    store=store,
                    journal=journal,
                )
    except SimulatedCrash as crash:
        print(
            f"serve: simulated crash at {crash.point} "
            f"(call {crash.call_index}); journal is durable at "
            f"{args.journal} — rerun with --recover",
            file=sys.stderr,
        )
        return 3
    if service.journal is not None:
        service.journal.close()
    report = service_report(service)
    if args.json:
        print(service_report_json(report), end="")
    else:
        print(format_service_report(report))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(service_report_json(report))
        if not args.json:
            print(f"wrote {args.report}")
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    import json

    from repro.core import PlanStore

    store = PlanStore(args.store, sweep=False)
    report = store.fsck(repair=not args.no_repair)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"scanned {report.scanned} entries "
            f"({report.bytes_scanned} bytes): {report.valid} valid, "
            f"{report.corrupt} corrupt, {report.quarantined} quarantined"
        )
        print(
            f"temp files: {report.tmp_seen} seen, "
            f"{report.tmp_reclaimed} reclaimed"
        )
        print(f"store {'clean' if report.clean else 'DIRTY'}")
    return 0 if report.clean else 1


def cmd_lint(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.lint import (
        format_human,
        format_json,
        format_suppressions,
        iter_rules,
        lint_paths,
    )

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.id:24s} [{rule.family}] {rule.description}")
        return 0
    rules = args.rules.split(",") if args.rules else None
    report = lint_paths(
        args.paths,
        rules=rules,
        flow=args.flow,
        cache_path=args.cache,
        jobs=args.jobs,
    )
    if args.graph:
        graph = report.callgraph
        if graph is None:
            print("no call graph: flow passes did not run", file=sys.stderr)
            return 2
        with open(args.graph, "w", encoding="utf-8") as handle:
            if args.graph.endswith(".dot"):
                handle.write(graph.to_dot())
            else:
                json_module.dump(
                    graph.to_json_dict(), handle, indent=2, sort_keys=True
                )
                handle.write("\n")
        print(f"wrote {args.graph}")
    if args.list_suppressions:
        print(format_suppressions(report))
        return 0
    rendered = format_json(report) if args.format == "json" else format_human(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tableau-repro",
        description="Reproduction of Tableau (EuroSys 2018): table-driven "
        "VM scheduling with guaranteed utilization and latency.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="generate a scheduling table")
    plan.add_argument("--vms", type=int, default=48)
    plan.add_argument("--utilization", type=float, default=0.25)
    plan.add_argument("--latency-ms", type=float, default=20.0)
    plan.add_argument("--topology", default="16core",
                      help="16core | 48core | <n> (default: 16core)")
    plan.add_argument("--verbose", action="store_true")
    plan.set_defaults(func=cmd_plan)

    overheads = sub.add_parser("overheads", help="reproduce Table 1/2")
    overheads.add_argument("--topology", default="16core")
    overheads.add_argument("--seconds", type=float, default=0.8)
    overheads.set_defaults(func=cmd_overheads)

    delay = sub.add_parser("delay", help="reproduce a Fig. 5/6 cell")
    delay.add_argument("--probe", choices=("intrinsic", "ping"),
                       default="intrinsic")
    delay.add_argument("--background", choices=("none", "io", "cpu"),
                       default="io")
    delay.add_argument("--uncapped", action="store_true")
    delay.add_argument("--seconds", type=float, default=1.5)
    delay.set_defaults(func=cmd_delay)

    web = sub.add_parser("web", help="reproduce a Fig. 7/8 point")
    web.add_argument("--rate", type=float, default=800.0)
    web.add_argument("--size-kib", type=int, default=1)
    web.add_argument("--background", choices=("none", "io", "cpu"),
                     default="io")
    web.add_argument("--uncapped", action="store_true")
    web.add_argument("--seconds", type=float, default=1.5)
    web.set_defaults(func=cmd_web)

    scaling = sub.add_parser("scaling", help="reproduce Figs. 3/4")
    scaling.add_argument("--repetitions", type=int, default=1)
    scaling.add_argument("--csv", default=None,
                         help="also write the series to this CSV file")
    scaling.set_defaults(func=cmd_scaling)

    report = sub.add_parser(
        "report", help="run the paper-vs-measured claim checklist"
    )
    report.add_argument("--seconds", type=float, default=0.5,
                        help="simulated seconds per runtime measurement")
    report.set_defaults(func=cmd_report)

    chaos = sub.add_parser(
        "chaos",
        help="run the stack under runtime fault injection with health "
        "supervision; exits non-zero if the invariant audit is dirty",
    )
    chaos.add_argument(
        "--fault-plan",
        default="chaos",
        help="runtime fault preset: none | lost-ipi | delayed-ipi | "
        "clock-skew | timer-jitter | stuck-vcpu | table-corrupt | chaos "
        "(default: chaos)",
    )
    chaos.add_argument("--seconds", type=float, default=0.5,
                       help="simulated seconds (default: 0.5)")
    chaos.add_argument("--seed", type=int, default=42)
    chaos.add_argument("--topology", default="16core")
    chaos.add_argument(
        "--health",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="enable the health layer (watchdogs, monitors, quarantine, "
        "recovery); --no-health shows unsupervised fault behavior",
    )
    chaos.add_argument(
        "--strict-audit",
        action="store_true",
        help="crash on the first invariant violation instead of recording",
    )
    chaos.add_argument(
        "--report",
        default=None,
        help="also write the JSON report to this path (the CI artifact)",
    )
    chaos.add_argument(
        "--engine",
        choices=("object", "array"),
        default="object",
        help="dispatch backend: object (per-event dispatch) or array "
        "(batched table playback; bit-identical output, default: object)",
    )
    chaos.set_defaults(func=cmd_chaos)

    campaign = sub.add_parser(
        "campaign",
        help="run an experiment campaign (matrix of scheduler x density "
        "x seed x fault-preset shards) on a process pool with a shared "
        "plan cache and resumable run log",
    )
    campaign.add_argument(
        "--matrix",
        default="fig6-smoke",
        help="builtin matrix name (fig6, fig6-smoke, service, "
        "service-smoke) or a JSON matrix file (default: fig6-smoke)",
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width; 1 runs serially (default: 1)",
    )
    campaign.add_argument(
        "--cache-dir",
        default=None,
        help="root of the shared on-disk plan cache (shards and later "
        "runs reuse plans keyed by exact planning inputs)",
    )
    campaign.add_argument(
        "--log",
        default=None,
        help="JSONL run log; shard records stream here as they finish",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="skip shards that already have an ok record in --log",
    )
    campaign.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help="per-shard deadline in seconds (parallel runs only)",
    )
    campaign.add_argument(
        "--report",
        default=None,
        help="write the full JSON report (timings, cache stats) here",
    )
    campaign.add_argument(
        "--aggregate",
        default=None,
        help="write the deterministic aggregate JSON here (byte-stable "
        "across worker counts and resume boundaries)",
    )
    campaign.add_argument(
        "--engine",
        choices=("object", "array"),
        default=None,
        help="override the matrix's dispatch-backend axis with a single "
        "backend (default: honor the matrix's engines field)",
    )
    campaign.set_defaults(func=cmd_campaign)

    serve = sub.add_parser(
        "serve",
        help="run the scheduler-as-a-service control plane under a "
        "seeded streaming tenant churn workload (simulated clock) and "
        "print the deterministic service report",
    )
    serve.add_argument(
        "--seconds",
        type=float,
        default=300.0,
        help="simulated service lifetime (default: 300)",
    )
    serve.add_argument(
        "--hours",
        type=float,
        default=None,
        help="simulated lifetime in hours (overrides --seconds)",
    )
    serve.add_argument(
        "--arrival-rate",
        type=float,
        default=4.0,
        help="mean tenant request arrival rate per second before "
        "diurnal shaping (default: 4.0)",
    )
    serve.add_argument(
        "--population",
        type=int,
        default=32,
        help="churn generator's target tenant population (default: 32)",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=1000.0,
        help="base batch-flush window; bursts inside one window share "
        "one replan and one table push (default: 1000)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        help="admission queue bound; excess requests are rejected "
        "with reason 'backpressure' (default: service default)",
    )
    serve.add_argument(
        "--scheduler",
        choices=("tableau", "credit", "credit2", "rtds"),
        default="tableau",
        help="control-plane planning model (default: tableau)",
    )
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--topology", default="16core",
                       help="16core | 48core | <n> (default: 16core)")
    serve.add_argument(
        "--store",
        default=None,
        help="on-disk plan store warming the daemon's table cache "
        "(never affects the deterministic report)",
    )
    serve.add_argument(
        "--report",
        default=None,
        help="also write the canonical JSON report to this path (the "
        "byte-compared CI artifact)",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="print the canonical JSON report instead of the summary",
    )
    serve.add_argument(
        "--journal",
        default=None,
        help="append-only tenant WAL; makes the run crash-recoverable "
        "(every admitted request is durable before it takes effect)",
    )
    serve.add_argument(
        "--crash-plan",
        default=None,
        help="arm seeded crashpoints, e.g. 'service.admit@3' or "
        "'service.commit@2+,service.flush.pre-push'; the process "
        "exits 3 at the first firing, leaving the journal durable "
        "(requires --journal)",
    )
    serve.add_argument(
        "--recover",
        action="store_true",
        help="rebuild the service by replaying --journal (crash "
        "restart), then resume the churn stream from the journaled "
        "RNG checkpoint and run to --seconds",
    )
    serve.set_defaults(func=cmd_serve)

    fsck = sub.add_parser(
        "fsck",
        help="verify an on-disk plan store: CRC-check every entry, "
        "quarantine corrupt ones, reclaim orphaned temp files; exits "
        "non-zero if anything was wrong",
    )
    fsck.add_argument("store", help="plan store root directory")
    fsck.add_argument(
        "--no-repair",
        action="store_true",
        help="report only; do not quarantine or delete anything",
    )
    fsck.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON",
    )
    fsck.set_defaults(func=cmd_fsck)

    lint = sub.add_parser(
        "lint",
        help="run the repo-specific static analysis (determinism, "
        "time-units, hot-path, error-handling, layering rules); exits "
        "non-zero on findings",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (json is the CI artifact)",
    )
    lint.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--output",
        default=None,
        help="write the report to this file instead of stdout",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    lint.add_argument(
        "--flow",
        action="store_true",
        default=True,
        help="run the whole-program flow passes (default)",
    )
    lint.add_argument(
        "--no-flow",
        dest="flow",
        action="store_false",
        help="skip the whole-program flow passes (single-site rules only)",
    )
    lint.add_argument(
        "--graph",
        default=None,
        metavar="PATH",
        help="export the resolved call graph (.dot for Graphviz, "
        "anything else as JSON)",
    )
    lint.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="incremental cache file: unchanged files skip parsing and "
        "rule runs (full-rule-set runs only)",
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse and run single-site rules on N worker processes",
    )
    lint.add_argument(
        "--list-suppressions",
        action="store_true",
        help="print every # repro: allow[...] comment with per-id "
        "liveness and exit",
    )
    lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
