"""The multiprocess campaign engine.

Executes a :class:`~repro.campaign.matrix.CampaignMatrix`'s shards on a
``ProcessPoolExecutor`` with per-shard timeouts, one retry after a
worker crash, and a resumable JSONL run log.  Results are keyed by
shard id and merged back in matrix order, so the aggregate a parallel
run produces is byte-identical to a serial (``workers=1``) run — and to
a run resumed from a half-complete log.

Shard records stream to the run log as they complete (completion
order), one JSON object per line.  ``--resume`` replays the log: shards
with an ``ok`` record are skipped, everything else re-runs, and the
merged output is indistinguishable from a single uninterrupted run.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple, Union

from repro.campaign.matrix import CampaignMatrix
from repro.campaign.report import aggregate_records, campaign_report
from repro.campaign.shard import ShardSpec, run_shard


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    matrix: CampaignMatrix
    #: One record per shard, in matrix order (the deterministic merge).
    records: List[Dict[str, object]]
    #: Deterministic aggregate (see :func:`aggregate_records`).
    aggregate: Dict[str, object]
    #: Full report: aggregate + timings + cache stats (not byte-stable).
    report: Dict[str, object]
    workers: int
    wall_s: float
    #: Shards skipped because a resumed log already had their result.
    resumed: int = 0
    #: Shards retried after a worker crash.
    retried: int = 0
    failures: List[str] = field(default_factory=list)
    log_path: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return not self.failures


def _failure_record(
    spec: ShardSpec, status: str, error: str
) -> Dict[str, object]:
    return {
        "shard": spec.shard_id,
        "index": spec.index,
        "status": status,
        "spec": spec.as_dict(),
        "error": error,
        "metrics": {},
        "timings": {},
        "plan_cache": None,
    }


def _write_record(log: Optional[TextIO], record: Dict[str, object]) -> None:
    if log is None:
        return
    log.write(json.dumps(record, sort_keys=True) + "\n")
    log.flush()


def load_run_log(path: Union[str, Path]) -> Dict[str, Dict[str, object]]:
    """Completed (``ok``) records from a JSONL run log, keyed by shard id.

    Tolerates a truncated final line (the crash-interrupted write the
    resume path exists for); malformed lines are skipped, not fatal.
    """
    completed: Dict[str, Dict[str, object]] = {}
    log_file = Path(path)
    if not log_file.exists():
        return completed
    with open(log_file, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (
                isinstance(record, dict)
                and record.get("status") == "ok"
                and isinstance(record.get("shard"), str)
            ):
                completed[record["shard"]] = record
    return completed


def _run_serial(
    pending: List[ShardSpec],
    cache_dir: Optional[str],
    log: Optional[TextIO],
) -> Tuple[Dict[str, Dict[str, object]], List[str], int]:
    """The workers<=1 path: same executor, same records, no pool."""
    results: Dict[str, Dict[str, object]] = {}
    failures: List[str] = []
    for spec in pending:
        try:
            record = run_shard(spec, cache_dir)
        except Exception as error:  # noqa: BLE001 - shard isolation
            record = _failure_record(
                spec, "failed", f"{type(error).__name__}: {error}"
            )
            failures.append(f"{spec.shard_id}: {record['error']}")
        results[spec.shard_id] = record
        _write_record(log, record)
    return results, failures, 0


def _run_parallel(
    pending: List[ShardSpec],
    cache_dir: Optional[str],
    log: Optional[TextIO],
    workers: int,
    shard_timeout_s: Optional[float],
) -> Tuple[Dict[str, Dict[str, object]], List[str], int]:
    """Pool execution with retry-once-per-shard on worker crashes.

    A crashed worker breaks the whole pool (every outstanding future
    raises ``BrokenProcessPool``); affected shards are requeued — once
    each — into a fresh pool.  Ordinary exceptions are deterministic
    shard failures and are recorded without retry.

    The timeout is a *shared deadline*: every shard of a round gets
    ``shard_timeout_s`` measured from submission, and awaiting in
    submission order charges each future only the time remaining until
    that deadline.  (The naive per-await ``result(timeout=...)`` form
    restarts the clock on every future, so one slow early shard grants
    all later shards its elapsed time — a queue of N shards could take
    N*timeout wall-clock and shards that finished long ago would still
    be reported after the stragglers.)  When the deadline expires the
    round ends the way a crash does: finished futures are harvested,
    running ones are recorded as timeouts, never-started ones are
    requeued into a fresh pool with no attempt charged, and the old
    pool is abandoned without waiting — ``future.cancel()`` cannot stop
    a running task, so blocking in the executor's ``__exit__`` (the old
    code path) would stall the whole campaign behind the very shard
    that just timed out.
    """
    results: Dict[str, Dict[str, object]] = {}
    failures: List[str] = []
    attempts: Dict[str, int] = {}
    retried = 0
    queue = list(pending)

    def consume(spec: ShardSpec, record: Dict[str, object], note: str = "") -> None:
        attempts[spec.shard_id] = attempts.get(spec.shard_id, 0) + 1
        if record["status"] != "ok":
            failures.append(note or f"{spec.shard_id}: {record['error']}")
        results[spec.shard_id] = record
        _write_record(log, record)

    while queue:
        crashed: List[ShardSpec] = []
        requeue: List[ShardSpec] = []
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            deadline = (
                time.monotonic() + shard_timeout_s
                if shard_timeout_s is not None
                else None
            )
            futures = [
                (spec, pool.submit(run_shard, spec, cache_dir))
                for spec in queue
            ]
            expired = False
            for pos, (spec, future) in enumerate(futures):
                if expired:
                    break
                remaining = (
                    max(0.0, deadline - time.monotonic())
                    if deadline is not None
                    else None
                )
                try:
                    record = future.result(timeout=remaining)
                except FutureTimeout:
                    expired = True
                    consume(
                        spec,
                        _failure_record(
                            spec,
                            "timeout",
                            f"shard exceeded {shard_timeout_s}s",
                        ),
                        note=f"{spec.shard_id}: timeout",
                    )
                    # Deadline sweep over everything not yet awaited:
                    # done futures are real results and must not be
                    # discarded; running ones share the blown deadline;
                    # pending ones never started, so they go back into
                    # a fresh pool without an attempt charged.
                    for later_spec, later_future in futures[pos + 1 :]:
                        if later_future.done():
                            try:
                                later_record = later_future.result()
                            except BrokenProcessPool:
                                attempts[later_spec.shard_id] = (
                                    attempts.get(later_spec.shard_id, 0) + 1
                                )
                                crashed.append(later_spec)
                                continue
                            except Exception as error:  # noqa: BLE001
                                later_record = _failure_record(
                                    later_spec,
                                    "failed",
                                    f"{type(error).__name__}: {error}",
                                )
                            consume(later_spec, later_record)
                        elif later_future.cancel():
                            requeue.append(later_spec)
                        else:
                            consume(
                                later_spec,
                                _failure_record(
                                    later_spec,
                                    "timeout",
                                    f"shard exceeded {shard_timeout_s}s",
                                ),
                                note=f"{later_spec.shard_id}: timeout",
                            )
                    continue
                except BrokenProcessPool:
                    attempts[spec.shard_id] = (
                        attempts.get(spec.shard_id, 0) + 1
                    )
                    crashed.append(spec)
                    continue
                except Exception as error:  # noqa: BLE001 - shard isolation
                    record = _failure_record(
                        spec, "failed", f"{type(error).__name__}: {error}"
                    )
                consume(spec, record)
        finally:
            # Never wait: a running shard cannot be cancelled, and the
            # next round must not queue behind it.  Workers of an
            # expired round exit on their own once their task returns.
            pool.shutdown(wait=False, cancel_futures=True)
        queue = list(requeue)
        for spec in crashed:
            if attempts[spec.shard_id] <= 1:
                retried += 1
                queue.append(spec)
            else:
                record = _failure_record(
                    spec, "crashed", "worker crashed twice; giving up"
                )
                failures.append(f"{spec.shard_id}: worker crashed twice")
                results[spec.shard_id] = record
                _write_record(log, record)
    return results, failures, retried


def run_campaign(
    matrix: CampaignMatrix,
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    log_path: Optional[Union[str, Path]] = None,
    resume: bool = False,
    shard_timeout_s: Optional[float] = None,
) -> CampaignResult:
    """Run every shard of ``matrix`` and build the deterministic merge.

    Args:
        matrix: The declarative experiment grid.
        workers: Process-pool width; ``<=1`` runs in-process (the
            reference serial path — identical records by construction).
        cache_dir: Root of the shared on-disk :class:`PlanStore`; plans
            generated by any shard are reused by every later shard and
            every later run.
        log_path: JSONL run log; records stream here as shards finish.
        resume: Skip shards that already have an ``ok`` record in
            ``log_path`` (new records are appended).
        shard_timeout_s: Per-shard result deadline in the parallel
            path; a shard that exceeds it is recorded as ``timeout``.
    """
    started = time.perf_counter()
    shards = matrix.expand()
    cache = str(cache_dir) if cache_dir is not None else None

    completed: Dict[str, Dict[str, object]] = {}
    if resume and log_path is not None:
        wanted = {spec.shard_id for spec in shards}
        completed = {
            shard_id: record
            for shard_id, record in load_run_log(log_path).items()
            if shard_id in wanted
        }
    pending = [spec for spec in shards if spec.shard_id not in completed]

    log: Optional[TextIO] = None
    if log_path is not None:
        log_file = Path(log_path)
        log_file.parent.mkdir(parents=True, exist_ok=True)
        if resume and log_file.exists():
            # A crash mid-write leaves a torn final line with no
            # newline; terminate it or the first appended record would
            # merge into it and be lost on the next resume.
            tail = log_file.read_bytes()[-1:]
            if tail and tail != b"\n":
                with open(log_file, "a", encoding="utf-8") as handle:
                    handle.write("\n")
        if not resume:
            # Fresh run: drop any stale log, then append — never open
            # with a truncating mode (err-nonatomic-write); the run log
            # is append-only by contract, and resume depends on that.
            log_file.unlink(missing_ok=True)
        log = open(log_file, "a", encoding="utf-8")
    try:
        if workers <= 1:
            results, failures, retried = _run_serial(pending, cache, log)
        else:
            results, failures, retried = _run_parallel(
                pending, cache, log, workers, shard_timeout_s
            )
    finally:
        if log is not None:
            log.close()

    merged = dict(completed)
    merged.update(results)
    # The deterministic merge: matrix order, not completion order.
    records = [merged[spec.shard_id] for spec in shards]
    wall = time.perf_counter() - started

    aggregate = aggregate_records(matrix, records)
    report = campaign_report(
        matrix,
        records,
        aggregate,
        workers=workers,
        wall_s=wall,
        resumed=len(completed),
        retried=retried,
    )
    return CampaignResult(
        matrix=matrix,
        records=records,
        aggregate=aggregate,
        report=report,
        workers=workers,
        wall_s=wall,
        resumed=len(completed),
        retried=retried,
        failures=failures,
        log_path=Path(log_path) if log_path is not None else None,
    )
