"""Campaign aggregation and reporting.

Two strictly separated outputs:

* :func:`aggregate_records` — the **deterministic** aggregate, built
  only from simulated results (never wall-clock timings or cache
  luck).  Serialized with sorted keys it is byte-identical across
  worker counts, resume boundaries, and cache temperature; the
  determinism suite asserts exactly that.
* :func:`campaign_report` — the full operational report: the aggregate
  plus phase timings, plan-cache statistics, and retry/resume
  accounting.  Useful, but not byte-stable by design.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.atomicio import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.campaign.matrix import CampaignMatrix
    from repro.campaign.runner import CampaignResult

#: Per-probe metric keys summarized per scheduler (mean over cells, and
#: the worst observed for *_max-style keys).  The ms/ratio keys after
#: ``mean_delay_ms`` are the service probe's.
_MEAN_KEYS = (
    "avg_ms",
    "p99_ms",
    "mean_delay_ms",
    "replan_p99_ms",
    "sojourn_p99_ms",
    "batching_ratio",
    "rejection_rate",
)
_WORST_KEYS = ("max_ms", "max_delay_ms", "replan_p999_ms")


def _cell(record: Dict[str, object]) -> Dict[str, object]:
    """The deterministic slice of one shard record, flattened."""
    spec = record.get("spec") or {}
    assert isinstance(spec, dict)
    return {
        "shard": record.get("shard"),
        "status": record.get("status"),
        "scheduler": spec.get("scheduler"),
        "num_vms": spec.get("num_vms"),
        "seed": spec.get("seed"),
        "preset": spec.get("preset"),
        "metrics": record.get("metrics") or {},
    }


def aggregate_records(
    matrix: "CampaignMatrix", records: List[Dict[str, object]]
) -> Dict[str, object]:
    """The byte-stable aggregate of one campaign's records.

    ``records`` must already be in matrix order (the runner's merge
    guarantees it); every derived statistic is computed in that order
    from deterministic fields only.
    """
    cells = [_cell(record) for record in records]
    by_scheduler: Dict[str, Dict[str, object]] = {}
    for scheduler in matrix.schedulers:
        mine = [
            c for c in cells if c["scheduler"] == scheduler and c["status"] == "ok"
        ]
        summary: Dict[str, object] = {"cells": len(mine)}
        metrics = [c["metrics"] for c in mine]
        for key in _MEAN_KEYS:
            values = [m[key] for m in metrics if key in m]
            if values:
                summary[f"mean_{key}"] = sum(values) / len(values)
        for key in _WORST_KEYS:
            values = [m[key] for m in metrics if key in m]
            if values:
                summary[f"worst_{key}"] = max(values)
        events = [m.get("events") for m in metrics]
        if events and all(isinstance(e, int) for e in events):
            summary["events"] = sum(events)  # type: ignore[arg-type]
        by_scheduler[scheduler] = summary
    return {
        "campaign": matrix.name,
        "probe": matrix.probe,
        "topology": matrix.topology,
        "duration_s": matrix.duration_s,
        "latency_ms": matrix.latency_ms,
        "capped": matrix.capped,
        "background": matrix.background,
        "shards": len(cells),
        "ok": sum(1 for c in cells if c["status"] == "ok"),
        "cells": cells,
        "by_scheduler": by_scheduler,
    }


def aggregate_json(aggregate: Dict[str, object]) -> str:
    """The canonical byte encoding of an aggregate (sorted, indented)."""
    return json.dumps(aggregate, indent=2, sort_keys=True) + "\n"


def campaign_report(
    matrix: "CampaignMatrix",
    records: List[Dict[str, object]],
    aggregate: Dict[str, object],
    *,
    workers: int,
    wall_s: float,
    resumed: int = 0,
    retried: int = 0,
) -> Dict[str, object]:
    """Aggregate + operational stats (timings, cache, retries)."""
    phase_seconds: Dict[str, float] = {}
    cache_hits = 0
    cache_lookups = 0
    status_counts: Dict[str, int] = {}
    for record in records:
        status = str(record.get("status"))
        status_counts[status] = status_counts.get(status, 0) + 1
        timings = record.get("timings") or {}
        assert isinstance(timings, dict)
        for name in sorted(timings):
            phase_seconds[name] = phase_seconds.get(name, 0.0) + float(
                timings[name]
            )
        plan_cache = record.get("plan_cache")
        if isinstance(plan_cache, dict):
            cache_lookups += 1
            if plan_cache.get("hit"):
                cache_hits += 1
    return {
        "campaign": matrix.name,
        "workers": workers,
        "wall_s": round(wall_s, 4),
        "resumed": resumed,
        "retried": retried,
        "status": dict(sorted(status_counts.items())),
        "phase_seconds": {
            name: round(phase_seconds[name], 4) for name in sorted(phase_seconds)
        },
        "plan_cache": {
            "lookups": cache_lookups,
            "hits": cache_hits,
            "hit_rate": round(cache_hits / cache_lookups, 4)
            if cache_lookups
            else 0.0,
        },
        "aggregate": aggregate,
    }


def format_campaign(result: "CampaignResult") -> str:
    """Human-readable summary for the CLI."""
    matrix = result.matrix
    lines = [
        f"campaign {matrix.name}: {len(result.records)} shards "
        f"({result.resumed} resumed, {result.retried} retried, "
        f"{len(result.failures)} failed) on {result.workers} worker(s) "
        f"in {result.wall_s:.2f}s"
    ]
    report = result.report
    phases = report.get("phase_seconds") or {}
    assert isinstance(phases, dict)
    if phases:
        spent = " ".join(f"{k}={v:.2f}s" for k, v in phases.items())
        lines.append(f"  phases: {spent}")
    cache = report.get("plan_cache") or {}
    assert isinstance(cache, dict)
    if cache.get("lookups"):
        lines.append(
            f"  plan cache: {cache['hits']}/{cache['lookups']} hits "
            f"({100.0 * float(cache['hit_rate']):.0f}%)"
        )
    by_scheduler = result.aggregate.get("by_scheduler") or {}
    assert isinstance(by_scheduler, dict)
    for scheduler in matrix.schedulers:
        summary = by_scheduler.get(scheduler) or {}
        parts = [f"{summary.get('cells', 0)} cells"]
        for key in sorted(summary):
            if key.startswith(("mean_", "worst_")):
                parts.append(f"{key}={summary[key]:.3f}")
        lines.append(f"  {scheduler:>9s}: " + " ".join(parts))
    for failure in result.failures:
        lines.append(f"  FAILED {failure}")
    return "\n".join(lines)


def write_aggregate(
    aggregate: Dict[str, object], path: str
) -> Optional[str]:
    """Write the canonical aggregate JSON; returns the path.

    Atomic (temp + rename): a campaign killed mid-write must never
    leave a torn aggregate that a later ``--resume`` or CI diff would
    read as truth.
    """
    atomic_write_text(path, aggregate_json(aggregate))
    return path
