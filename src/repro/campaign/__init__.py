"""Parallel experiment campaigns over the evaluation matrix.

``repro.campaign`` turns the paper's scheduler x density x seed x
fault-preset evaluation grid into shards executed on a process pool,
backed by the content-addressed on-disk plan cache
(:class:`repro.core.plancache.PlanStore`) and a resumable JSONL run
log.  Parallel, serial, and resumed runs produce byte-identical
deterministic aggregates.

This package sits *above* the simulation stack: it may import
``repro.core`` / ``repro.sim`` / ``repro.experiments``, but nothing in
the deterministic scope may import it back (enforced by
``repro.lint``'s layering rules).  Wall-clock use is deliberate and
confined to operational reporting.
"""

from repro.campaign.matrix import (
    BUILTIN_MATRICES,
    CampaignMatrix,
    fig6_matrix,
    load_matrix,
    resolve_topology,
)
from repro.campaign.report import (
    aggregate_json,
    aggregate_records,
    campaign_report,
    format_campaign,
    write_aggregate,
)
from repro.campaign.runner import (
    CampaignResult,
    load_run_log,
    run_campaign,
)
from repro.campaign.shard import PROBES, ShardSpec, run_shard

__all__ = [
    "BUILTIN_MATRICES",
    "CampaignMatrix",
    "CampaignResult",
    "PROBES",
    "ShardSpec",
    "aggregate_json",
    "aggregate_records",
    "campaign_report",
    "fig6_matrix",
    "format_campaign",
    "load_matrix",
    "load_run_log",
    "resolve_topology",
    "run_campaign",
    "run_shard",
    "write_aggregate",
]
