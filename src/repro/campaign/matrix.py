"""Declarative experiment matrices and their expansion into shards.

The paper's evaluation (Figs. 5-8) is a scheduler x VM-density x seed
grid; robustness work adds a fault/health-preset axis.  A
:class:`CampaignMatrix` declares that grid once — as a Python value or
a small JSON file — and :meth:`CampaignMatrix.expand` turns it into an
ordered list of :class:`~repro.campaign.shard.ShardSpec` cells.  The
expansion order is the matrix's canonical order: results are always
merged back in this order, which is what makes parallel campaign
output bit-identical to serial output.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.campaign.shard import PROBES, ShardSpec
from repro.errors import ConfigurationError
from repro.experiments.scenarios import BACKGROUNDS, SCHEDULERS, VMS_PER_CORE
from repro.faults import RUNTIME_PRESETS
from repro.sim.arraycore import ENGINES
from repro.topology import Topology, uniform, xeon_16core, xeon_48core

#: The no-faults preset name (always valid).
PRESET_NONE = "none"


def resolve_topology(name: str) -> Topology:
    """``16core`` | ``48core`` | ``<n>`` (optionally ``<n>x<sockets>``)."""
    if name == "16core":
        return xeon_16core()
    if name == "48core":
        return xeon_48core()
    if "x" in name:
        cores, _, sockets = name.partition("x")
        return uniform(int(cores), sockets=int(sockets))
    return uniform(int(name))


@dataclass(frozen=True)
class CampaignMatrix:
    """A declarative scheduler x density x seed x preset matrix.

    Attributes:
        name: Campaign label (prefixes shard ids and report files).
        probe: Measurement driver per cell (one of
            :data:`~repro.campaign.shard.PROBES`).
        schedulers: Scheduler axis.
        vm_counts: Density axis; ``0`` means the paper's default of
            four VMs per guest core on the chosen topology.
        seeds: Simulation-seed axis.
        presets: Fault-plan axis: ``"none"`` or any
            :data:`repro.faults.RUNTIME_PRESETS` name.
        engines: Dispatch-backend axis (:data:`repro.sim.ENGINES`);
            every cell is bit-identical across backends, so this axis
            exists for differential sweeps and backend benchmarking.
        capped: Whether VMs are held to their reservations.
        background: Non-vantage VM workload.
        topology: Topology token for :func:`resolve_topology`.
        duration_s: Simulated seconds per cell.
        latency_ms: Per-VM latency goal (20 is the paper's evaluation
            default; 1 reproduces Fig. 3's hardest planner curve).
        health: Arm the health layer on tableau cells of fault presets.
        arrival_rates: Service-probe axis — mean tenant arrival rates
            (requests/s) for the churn generator.  Only valid (and
            defaulted to ``(4.0,)``) when ``probe == "service"``, where
            ``vm_counts`` doubles as the target tenant population and
            ``seeds`` seed the churn stream.
        batch_windows_ms: Service-probe axis — base batch-flush
            windows; defaulted to ``(1000.0,)`` for service campaigns.
    """

    name: str = "campaign"
    probe: str = "ping"
    schedulers: Sequence[str] = ("credit", "credit2", "tableau")
    vm_counts: Sequence[int] = (0,)
    seeds: Sequence[int] = (42,)
    presets: Sequence[str] = (PRESET_NONE,)
    engines: Sequence[str] = ("object",)
    capped: bool = False
    background: str = "io"
    topology: str = "16core"
    duration_s: float = 0.5
    latency_ms: float = 20.0
    health: bool = False
    arrival_rates: Sequence[float] = ()
    batch_windows_ms: Sequence[float] = ()
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.probe not in PROBES:
            raise ConfigurationError(
                f"unknown probe {self.probe!r} (choose from {PROBES})"
            )
        if self.background not in BACKGROUNDS:
            raise ConfigurationError(f"unknown background {self.background!r}")
        for scheduler in self.schedulers:
            if scheduler not in SCHEDULERS:
                raise ConfigurationError(f"unknown scheduler {scheduler!r}")
            if scheduler == "credit2" and self.capped:
                raise ConfigurationError(
                    "credit2 has no cap mechanism; use capped=false"
                )
            if scheduler == "rtds" and not self.capped:
                raise ConfigurationError(
                    "rtds is capped-only; use capped=true"
                )
        for preset in self.presets:
            if preset != PRESET_NONE and preset not in RUNTIME_PRESETS:
                known = ", ".join(sorted(RUNTIME_PRESETS))
                raise ConfigurationError(
                    f"unknown fault preset {preset!r} (none | {known})"
                )
        for engine in self.engines:
            if engine not in ENGINES:
                raise ConfigurationError(
                    f"unknown engine {engine!r} (choose from {ENGINES})"
                )
        if (
            not self.schedulers
            or not self.vm_counts
            or not self.seeds
            or not self.engines
        ):
            raise ConfigurationError("matrix axes must be non-empty")
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if self.latency_ms <= 0:
            raise ConfigurationError("latency_ms must be positive")
        if self.probe in ("service", "crash-recovery"):
            # The control-plane scenarios have no machine-level
            # dispatch: runtime fault presets, health supervision, and
            # the array backend do not apply.
            if any(preset != PRESET_NONE for preset in self.presets):
                raise ConfigurationError(
                    f"{self.probe} campaigns take presets=('none',); "
                    "machine-level fault presets do not apply to the "
                    "control plane"
                )
            if tuple(self.engines) != ("object",):
                raise ConfigurationError(
                    f"{self.probe} campaigns take engines=('object',)"
                )
            if self.health:
                raise ConfigurationError(
                    f"{self.probe} campaigns take health=false"
                )
            object.__setattr__(
                self, "arrival_rates", tuple(self.arrival_rates) or (4.0,)
            )
            object.__setattr__(
                self,
                "batch_windows_ms",
                tuple(self.batch_windows_ms) or (1000.0,),
            )
            for rate in self.arrival_rates:
                if rate <= 0:
                    raise ConfigurationError("arrival rates must be positive")
            for window in self.batch_windows_ms:
                if window <= 0:
                    raise ConfigurationError("batch windows must be positive")
        elif self.arrival_rates or self.batch_windows_ms:
            raise ConfigurationError(
                "arrival_rates/batch_windows_ms are service-probe axes; "
                f"probe {self.probe!r} does not read them"
            )
        resolve_topology(self.topology)  # validate eagerly

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------

    def default_vm_count(self) -> int:
        topo = resolve_topology(self.topology)
        return VMS_PER_CORE * len(topo.guest_cores)

    def expand(self) -> List[ShardSpec]:
        """All cells, in canonical (scheduler, count, seed, preset,
        engine[, arrival, window]) order.  The engine token only
        appears in shard ids for non-default backends, so existing
        single-backend campaign logs (and ``--resume`` against them)
        keep their ids; the service axes likewise only suffix ids on
        service campaigns."""
        # Non-service probes carry zeroed service axes in their specs.
        service_cells = (
            [(rate, window)
             for rate in self.arrival_rates
             for window in self.batch_windows_ms]
            if self.probe in ("service", "crash-recovery")
            else [(0.0, 0.0)]
        )
        shards: List[ShardSpec] = []
        index = 0
        for scheduler in self.schedulers:
            for count in self.vm_counts:
                num_vms = count if count else self.default_vm_count()
                for seed in self.seeds:
                    for preset in self.presets:
                        for engine in self.engines:
                            for rate, window in service_cells:
                                shard_id = (
                                    f"{index:04d}.{scheduler}.v{num_vms}"
                                    f".s{seed}.{preset}"
                                )
                                if engine != "object":
                                    shard_id += f".{engine}"
                                if self.probe in (
                                    "service", "crash-recovery"
                                ):
                                    shard_id += f".a{rate:g}.w{window:g}"
                                shards.append(
                                    ShardSpec(
                                        shard_id=shard_id,
                                        index=index,
                                        campaign=self.name,
                                        probe=self.probe,
                                        scheduler=scheduler,
                                        num_vms=num_vms,
                                        seed=seed,
                                        preset=preset,
                                        health=self.health,
                                        capped=self.capped,
                                        background=self.background,
                                        topology=self.topology,
                                        duration_s=self.duration_s,
                                        latency_ms=self.latency_ms,
                                        engine=engine,
                                        arrival_rate=rate,
                                        batch_window_ms=window,
                                    )
                                )
                                index += 1
        return shards

    # ------------------------------------------------------------------
    # (De)serialization — the --matrix file format
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignMatrix":
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown matrix key(s): {', '.join(unknown)}"
            )
        kwargs = dict(data)
        for axis in (
            "schedulers",
            "vm_counts",
            "seeds",
            "presets",
            "engines",
            "arrival_rates",
            "batch_windows_ms",
        ):
            if axis in kwargs:
                value = kwargs[axis]
                if not isinstance(value, (list, tuple)):
                    raise ConfigurationError(f"matrix {axis} must be a list")
                kwargs[axis] = tuple(value)
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CampaignMatrix":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ConfigurationError(f"{path}: matrix file must hold an object")
        return cls.from_dict(data)


def fig6_matrix(
    duration_s: float = 0.5,
    seeds: Sequence[int] = (42, 43),
    topology: str = "16core",
    vm_counts: Sequence[int] = (0,),
    latency_ms: float = 20.0,
) -> CampaignMatrix:
    """A Fig. 6-style campaign: ping latency, uncapped comparison set."""
    return CampaignMatrix(
        name="fig6",
        probe="ping",
        schedulers=("credit", "credit2", "tableau"),
        vm_counts=tuple(vm_counts),
        seeds=tuple(seeds),
        presets=(PRESET_NONE,),
        capped=False,
        background="io",
        topology=topology,
        duration_s=duration_s,
        latency_ms=latency_ms,
    )


def service_matrix(
    duration_s: float = 300.0,
    seeds: Sequence[int] = (42,),
    arrival_rates: Sequence[float] = (2.0, 4.0, 8.0),
    batch_windows_ms: Sequence[float] = (250.0, 1000.0),
    topology: str = "16core",
    target_population: int = 32,
) -> CampaignMatrix:
    """A scheduler-as-a-service sweep: arrival rate x batch window."""
    return CampaignMatrix(
        name="service",
        probe="service",
        schedulers=("credit", "tableau"),
        vm_counts=(target_population,),
        seeds=tuple(seeds),
        presets=(PRESET_NONE,),
        topology=topology,
        duration_s=duration_s,
        arrival_rates=tuple(arrival_rates),
        batch_windows_ms=tuple(batch_windows_ms),
    )


def crash_recovery_matrix(
    duration_s: float = 40.0,
    seeds: Sequence[int] = (42, 43),
    arrival_rates: Sequence[float] = (6.0,),
    batch_windows_ms: Sequence[float] = (1000.0,),
    topology: str = "8",
    target_population: int = 12,
) -> CampaignMatrix:
    """A crash-recovery sweep: seeded crash/recover cycles per cell,
    each verified byte-identical against the uninterrupted run."""
    return CampaignMatrix(
        name="crash-recovery",
        probe="crash-recovery",
        schedulers=("tableau",),
        vm_counts=(target_population,),
        seeds=tuple(seeds),
        presets=(PRESET_NONE,),
        topology=topology,
        duration_s=duration_s,
        arrival_rates=tuple(arrival_rates),
        batch_windows_ms=tuple(batch_windows_ms),
    )


#: Named matrices accepted by ``--matrix`` without a file.
BUILTIN_MATRICES = {
    "fig6": fig6_matrix,
    "fig6-smoke": lambda: fig6_matrix(
        duration_s=0.2, seeds=(42,), topology="8", vm_counts=(16,)
    ),
    "service": service_matrix,
    "service-smoke": lambda: service_matrix(
        duration_s=60.0,
        arrival_rates=(4.0,),
        batch_windows_ms=(1000.0,),
        topology="8",
        target_population=16,
    ),
    "crash-recovery": crash_recovery_matrix,
    "crash-smoke": lambda: crash_recovery_matrix(
        duration_s=30.0, seeds=(42,)
    ),
}


def load_matrix(token: str) -> CampaignMatrix:
    """``--matrix`` resolution: builtin name or JSON file path."""
    builder = BUILTIN_MATRICES.get(token)
    if builder is not None:
        return builder()
    path = Path(token)
    if not path.exists():
        known = ", ".join(sorted(BUILTIN_MATRICES))
        raise ConfigurationError(
            f"matrix {token!r} is neither a builtin ({known}) nor a file"
        )
    return CampaignMatrix.from_file(path)
