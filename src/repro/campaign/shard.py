"""Shard specs and the worker-side shard executor.

A :class:`ShardSpec` is one cell of a campaign matrix, reduced to plain
picklable data — no machines, no plans, no closures — so a
``ProcessPoolExecutor`` worker (or a remote runner) can reconstruct and
execute the cell from the spec alone.  :func:`run_shard` is that
executor: it plans (through the shared on-disk
:class:`~repro.core.plancache.PlanStore` when a cache directory is
given), builds the scenario, simulates, and aggregates, timing each of
the four phases.

The returned record keeps deterministic simulation output (``metrics``)
strictly separate from environment-dependent observability (``timings``,
``plan_cache``): campaign aggregation reads only the former, which is
what lets a parallel run's aggregate match a serial run's byte for
byte.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional

from repro.core import PlanStore
from repro.metrics import PhaseTimings, summarize_ns

#: Probe kinds a shard can run: the Fig. 5 and Fig. 6 drivers, the
#: scheduler-as-a-service scenario (streaming tenant churn against the
#: persistent control plane), and the crash-recovery probe (seeded
#: crash/recover cycles that must reproduce the uninterrupted run
#: byte-for-byte).
PROBES = ("intrinsic", "ping", "service", "crash-recovery")

#: Ping-load shape per shard, matching the scaled-down
#: :func:`repro.experiments.delay.ping_latency` defaults.
PING_THREADS = 8
PINGS_PER_THREAD = 200


@dataclass(frozen=True)
class ShardSpec:
    """One matrix cell as plain data (fully picklable; see tests)."""

    shard_id: str
    index: int
    campaign: str
    probe: str
    scheduler: str
    num_vms: int
    seed: int
    preset: str
    health: bool
    capped: bool
    background: str
    topology: str
    duration_s: float
    #: Per-VM latency goal in ms (the paper's default is 20; Fig. 3's
    #: hardest planner curve uses 1).
    latency_ms: float = 20.0
    #: Dispatch backend (:data:`repro.sim.ENGINES`).  ``"array"`` plays
    #: compiled table arrays; output stays bit-identical to ``"object"``.
    engine: str = "object"
    #: Service-probe axes (ignored by the other probes): mean tenant
    #: arrival rate and base batch-flush window.
    arrival_rate: float = 0.0
    batch_window_ms: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def run_shard(
    spec: ShardSpec, cache_dir: Optional[str] = None
) -> Dict[str, object]:
    """Execute one shard and return its result record.

    Module-level (not a method) so the process pool pickles it by
    reference; everything it needs travels in ``spec`` and
    ``cache_dir``.  Raises on failure — the campaign runner converts
    exceptions and worker crashes into failure records.
    """
    # Imports here keep worker start-up lean and avoid import cycles
    # (experiments -> campaign would otherwise be circular).
    from repro.campaign.matrix import resolve_topology

    if spec.probe == "service":
        return _run_service_shard(spec, cache_dir)
    if spec.probe == "crash-recovery":
        return _run_crash_recovery_shard(spec)

    from repro.experiments.delay import MS
    from repro.experiments.scenarios import build_scenario, plan_for

    latency_ns = int(spec.latency_ms * MS)
    from repro.faults import runtime_preset
    from repro.workloads import IntrinsicLatencyProbe, PingResponder, run_ping_load

    timings = PhaseTimings()
    topo = resolve_topology(spec.topology)
    store = PlanStore(cache_dir) if cache_dir else None

    with timings.phase("plan"):
        plan = plan_for(
            topo, spec.num_vms, spec.capped, store=store, latency_ns=latency_ns
        )

    faults = (
        runtime_preset(spec.preset, seed=spec.seed)
        if spec.preset != "none"
        else None
    )
    probe: object
    with timings.phase("build"):
        if spec.probe == "intrinsic":
            probe = IntrinsicLatencyProbe()
        else:
            probe = PingResponder()
        scenario = build_scenario(
            spec.scheduler,
            vantage_workload=probe,
            capped=spec.capped,
            background=spec.background,
            topology=topo,
            num_vms=spec.num_vms,
            seed=spec.seed,
            plan=plan,
            faults=faults,
            engine=spec.engine,
        )
        # Health supervision is a Tableau-stack layer; other schedulers
        # run unsupervised (their cells still see machine-level faults).
        supervisor = None
        if spec.health and spec.scheduler == "tableau":
            from repro.health import HealthSupervisor

            supervisor = HealthSupervisor(
                scenario.machine, scenario.machine.scheduler
            )
            supervisor.start()
        if spec.probe == "ping":
            from repro.core.params import seconds_to_ns

            # Exact-int spacing: convert to ns once, then divide with
            # ``//`` — float division here loses exactness for long
            # durations (the time-lossy-div-ns lint rule).
            spacing_ns = max(
                1, seconds_to_ns(spec.duration_s) // PINGS_PER_THREAD
            )
            run_ping_load(
                scenario.machine,
                probe,
                threads=PING_THREADS,
                pings_per_thread=PINGS_PER_THREAD,
                max_spacing_ns=spacing_ns,
            )

    with timings.phase("simulate"):
        scenario.run_seconds(spec.duration_s)

    with timings.phase("aggregate"):
        if supervisor is not None:
            supervisor.stop()
        machine = scenario.machine
        metrics: Dict[str, object] = {
            "sim_now_ns": machine.engine.now,
            "events": machine.engine.events_processed,
            "context_switches": machine.tracer.context_switches,
            "migrations": machine.tracer.migrations,
            "vantage_runtime_ns": scenario.vantage.runtime_ns,
            "vantage_dispatches": scenario.vantage.dispatch_count,
        }
        if spec.probe == "intrinsic":
            metrics["max_delay_ms"] = probe.max_gap_ns / MS
            metrics["mean_delay_ms"] = probe.mean_gap_ns / MS
        else:
            summary = summarize_ns(probe.latencies_ns)
            metrics["ping_count"] = summary.count
            metrics["avg_ms"] = summary.mean_ms
            metrics["p99_ms"] = summary.p99_ms
            metrics["max_ms"] = summary.max_ms

    record: Dict[str, object] = {
        "shard": spec.shard_id,
        "index": spec.index,
        "status": "ok",
        "spec": spec.as_dict(),
        "metrics": metrics,
        "timings": timings.as_dict(),
        "plan_cache": {
            "hit": plan.stats.plan_cache_hit,
            "store": store.stats.as_dict() if store is not None else None,
        },
    }
    return record


#: Conversion for reporting service latencies in ms (floats derived
#: from deterministic integer-ns samples stay deterministic).
_NS_PER_MS = 1_000_000


def _run_service_shard(
    spec: ShardSpec, cache_dir: Optional[str]
) -> Dict[str, object]:
    """One scheduler-as-a-service cell: churn stream → service report.

    ``num_vms`` is the churn generator's target population, ``seed``
    its stream seed, ``duration_s`` the simulated service lifetime.
    The deterministic ``metrics`` are flattened from the service report
    (integer-ns nearest-rank percentiles); the full report rides along
    under ``metrics["service"]``.  The on-disk plan store only warms
    the daemon's table cache — simulated latencies come from the
    deterministic model, so cache temperature never shows in metrics.
    """
    from repro.campaign.matrix import resolve_topology
    from repro.metrics import service_report
    from repro.service import ChurnConfig, ServiceConfig, run_service

    timings = PhaseTimings()
    topo = resolve_topology(spec.topology)
    store = PlanStore(cache_dir) if cache_dir else None

    with timings.phase("build"):
        churn = ChurnConfig(
            seed=spec.seed,
            arrival_rate_per_s=spec.arrival_rate,
            target_population=spec.num_vms,
        )
        config = ServiceConfig(batch_window_ms=spec.batch_window_ms)

    with timings.phase("simulate"):
        service = run_service(
            topo,
            duration_s=spec.duration_s,
            churn=churn,
            config=config,
            scheduler=spec.scheduler,
            store=store,
        )

    with timings.phase("aggregate"):
        report = service_report(service)
        replan = report["replan_latency_ns"]
        sojourn = report["sojourn_ns"]
        batching = report["batching"]
        rejected = report["rejected"]
        requests = report["requests"]
        slo = report["slo"]
        assert isinstance(replan, dict) and isinstance(sojourn, dict)
        assert isinstance(batching, dict) and isinstance(rejected, dict)
        assert isinstance(requests, dict) and isinstance(slo, dict)
        metrics: Dict[str, object] = {
            "events": service.engine.events_processed,
            "requests": requests["total"],
            "replan_p50_ms": replan["p50"] / _NS_PER_MS,
            "replan_p99_ms": replan["p99"] / _NS_PER_MS,
            "replan_p999_ms": replan["p999"] / _NS_PER_MS,
            "sojourn_p99_ms": sojourn["p99"] / _NS_PER_MS,
            "batching_ratio": batching["ratio"],
            "table_pushes": batching["table_pushes"],
            "rejection_rate": rejected["rate"],
            "slo_violations": slo["violations"],
            "service": report,
        }

    return {
        "shard": spec.shard_id,
        "index": spec.index,
        "status": "ok",
        "spec": spec.as_dict(),
        "metrics": metrics,
        "timings": timings.as_dict(),
        "plan_cache": {
            "hit": False,
            "store": store.stats.as_dict() if store is not None else None,
        },
    }


#: Seeded crash/recover cycles per crash-recovery shard.
CRASH_CYCLES = 3


def _run_crash_recovery_shard(spec: ShardSpec) -> Dict[str, object]:
    """One crash-recovery cell: N seeded crash/recover cycles, each
    verified byte-for-byte against the uninterrupted run.

    Every cycle gets its own temp directory (journal *and* plan store)
    — never the campaign's shared cache dir, because store warmth
    changes whether the ``plancache.write.pre-rename`` crashpoint
    fires.  Cycle *i* arms a single-shot :class:`CrashPlan` at the
    crashpoint ``SERVICE_CRASHPOINTS[(seed + i) % len]``, call index
    ``i + 1``, recovers through the journal, resumes, and compares
    the final :func:`service_report_json` against the shard's own
    uninterrupted reference.  Any divergence raises — the campaign
    runner records the shard failed.
    """
    import tempfile
    from pathlib import Path

    from repro.campaign.matrix import resolve_topology
    from repro.errors import ReproError
    from repro.faults.crash import SERVICE_CRASHPOINTS, CrashPlan
    from repro.metrics import service_report
    from repro.metrics.service import service_report_json
    from repro.service import ChurnConfig, ServiceConfig, run_service
    from repro.service.recovery import crash_recover_resume

    timings = PhaseTimings()
    topo = resolve_topology(spec.topology)

    with timings.phase("build"):
        churn = ChurnConfig(
            seed=spec.seed,
            arrival_rate_per_s=spec.arrival_rate,
            target_population=spec.num_vms,
        )
        config = ServiceConfig(batch_window_ms=spec.batch_window_ms)

    with timings.phase("plan"):
        # The uninterrupted reference (no journal, no store: neither
        # shows in the report).
        reference = run_service(
            topo,
            duration_s=spec.duration_s,
            churn=churn,
            config=config,
            scheduler=spec.scheduler,
        )
        reference_json = service_report_json(service_report(reference))

    cycles = []
    crashes_total = 0
    healed_total = 0
    with timings.phase("simulate"):
        for i in range(CRASH_CYCLES):
            point = SERVICE_CRASHPOINTS[
                (spec.seed + i) % len(SERVICE_CRASHPOINTS)
            ]
            plan = CrashPlan.at(point, call=i + 1, seed=spec.seed)
            with tempfile.TemporaryDirectory() as tmp:
                root = Path(tmp)
                store_root = root / "store"
                outcome = crash_recover_resume(
                    topo,
                    spec.duration_s,
                    root / "service.journal",
                    plan,
                    churn=churn,
                    config=config,
                    scheduler=spec.scheduler,
                    store_factory=lambda: PlanStore(store_root),
                )
                # Post-mortem fsck over the surviving store tree: a
                # crashed writer's debris must be gone (the restart
                # sweep) and every remaining entry must validate.
                fsck = PlanStore(store_root, sweep=False).fsck().as_dict()
                recovered_json = service_report_json(
                    service_report(outcome.service)
                )
            identical = recovered_json == reference_json
            crashes_total += outcome.crash_count
            healed_total += outcome.healed_bytes
            cycles.append(
                {
                    "point": point,
                    "call": i + 1,
                    "crashes": outcome.crash_count,
                    "healed_bytes": outcome.healed_bytes,
                    "identical": identical,
                    "fsck": fsck,
                }
            )
            if not identical:
                raise ReproError(
                    f"{spec.shard_id}: recovered report diverged from "
                    f"uninterrupted run (crashpoint {point}@{i + 1})"
                )
            if not fsck["clean"]:
                raise ReproError(
                    f"{spec.shard_id}: plan store not clean after "
                    f"recovery (crashpoint {point}@{i + 1}): {fsck}"
                )

    with timings.phase("aggregate"):
        metrics: Dict[str, object] = {
            "cycles": len(cycles),
            "crashes": crashes_total,
            "healed_bytes": healed_total,
            "identical_cycles": sum(1 for c in cycles if c["identical"]),
            "crash_cycles": cycles,
        }

    return {
        "shard": spec.shard_id,
        "index": spec.index,
        "status": "ok",
        "spec": spec.as_dict(),
        "metrics": metrics,
        "timings": timings.as_dict(),
        "plan_cache": {"hit": False, "store": None},
    }
