"""redis-cli --intrinsic-latency equivalent (Sec. 7.3).

The real tool runs a tight CPU-bound loop at the highest SCHED_FIFO
priority and records any gap between consecutive loop iterations; in a
guest whose own scheduler is out of the picture, every observed gap is
scheduling delay inflicted by the *VM* scheduler.  The simulated probe
does the same thing at zero cost: it is a CPU hog that records the gaps
between being descheduled and being dispatched again.
"""

from __future__ import annotations

from typing import List

from repro.sim.vm import Workload


class IntrinsicLatencyProbe(Workload):
    """CPU-bound probe recording scheduler-induced service gaps.

    Attributes (after a run):
        max_gap_ns: Largest observed gap — the paper's Fig. 5 metric.
        gaps_ns: All observed gaps (for distribution analysis).
    """

    def __init__(self, chunk_ns: int = 1_000_000) -> None:
        super().__init__()
        self.chunk_ns = chunk_ns
        self.max_gap_ns = 0
        self.gaps_ns: List[int] = []
        self._descheduled_at: int = 0
        self._ever_ran = False

    def start(self, now: int) -> None:
        self.vcpu.begin_burst(self.chunk_ns)

    def on_burst_complete(self, now: int) -> None:
        self.vcpu.begin_burst(self.chunk_ns)

    def on_dispatch(self, now: int) -> None:
        if self._ever_ran:
            gap = now - self._descheduled_at
            if gap > 0:
                self.gaps_ns.append(gap)
                if gap > self.max_gap_ns:
                    self.max_gap_ns = gap
        self._ever_ran = True

    def on_deschedule(self, now: int) -> None:
        self._descheduled_at = now

    @property
    def mean_gap_ns(self) -> float:
        return sum(self.gaps_ns) / len(self.gaps_ns) if self.gaps_ns else 0.0
