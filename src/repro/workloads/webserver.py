"""nginx-over-HTTPS web-server model and wrk2-style load generator
(Sec. 7.4).

The vantage VM runs an nginx worker serving fixed-size files over TLS.
Per request the worker spends a base CPU cost (accept + TLS + PHP
dispatch) plus a per-byte CPU cost (file read + encryption + copy into
the transmit path), streaming the response into the VM's virtual NIC in
chunks.  When the NIC ring fills, the worker blocks — the voluntary
yielding that lets dynamic schedulers spread a capped VM's execution
evenly and keep the wire busy (Sec. 7.5).  A response completes when its
last byte leaves the wire.

The load generator reproduces wrk2's *constant-throughput* open-loop
behaviour: requests are emitted on a fixed schedule and latency is
measured from the *intended* send time, which bakes in the coordinated-
omission correction the paper highlights [66].
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Deque, List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.metrics.latency import LatencySummary, summarize_ns
from repro.sim.machine import Machine
from repro.sim.vm import Workload
from repro.workloads.netdev import VirtualNic

#: Wire latency between client and server (one way), quiet 10 GbE.
WIRE_ONE_WAY_NS = 30_000

#: Default service-cost model, sized so the capped 25% vantage VM peaks
#: near the paper's throughputs (~1,600 req/s at 1 KiB).
BASE_CPU_NS = 140_000  # accept + TLS record + PHP dispatch
CPU_PER_BYTE_NS: float = 0.8  # read + encrypt + copy (~1.25 GB/s per core)
STREAM_CHUNK_BYTES = 65_536

KIB = 1_024
MIB = 1_048_576


@dataclass
class _Request:
    intended_at: int  # client-side intended send time (wrk2 semantics)
    size_bytes: int
    finished_at: Optional[int] = None


class _Phase(enum.Enum):
    IDLE = "idle"  # blocked, waiting for requests
    BASE = "base"  # running the per-request fixed CPU phase
    PREP = "prep"  # preparing a response chunk on the CPU
    WAIT_RING = "wait-ring"  # blocked until the NIC ring has space


class WebServerWorkload(Workload):
    """Single-worker nginx model: FIFO request handling, NIC streaming.

    Args:
        nic: The VM's virtual function (a fresh default one if omitted).
        base_cpu_ns: Per-request fixed CPU cost.
        cpu_per_byte_ns: Per-byte CPU cost of preparing the response.
        chunk_bytes: Streaming granularity into the NIC ring.
    """

    def __init__(
        self,
        nic: Optional[VirtualNic] = None,
        base_cpu_ns: int = BASE_CPU_NS,
        cpu_per_byte_ns: float = CPU_PER_BYTE_NS,
        chunk_bytes: int = STREAM_CHUNK_BYTES,
    ) -> None:
        super().__init__()
        if chunk_bytes <= 0:
            raise ConfigurationError("chunk size must be positive")
        self.nic = nic if nic is not None else VirtualNic()
        self.base_cpu_ns = base_cpu_ns
        self.cpu_per_byte_ns = cpu_per_byte_ns
        # A staged chunk must always be able to fit the (empty) ring, or
        # waiting for space could never succeed.
        self.chunk_bytes = min(chunk_bytes, self.nic.ring_bytes)
        self._phase = _Phase.IDLE
        self._backlog: Deque[_Request] = deque()
        self._active: Optional[_Request] = None
        self._to_stream = 0  # response bytes not yet handed to the NIC
        self._staged = 0  # prepared bytes awaiting ring space
        self.completed: List[_Request] = []
        self.on_complete = None  # optional callback(request) for clients

    # -- client side ------------------------------------------------------

    def deliver(self, request: _Request) -> None:
        """A request arrives at the server (already past the wire)."""
        self._backlog.append(request)
        self.machine.wake(self.vcpu)

    # -- workload protocol --------------------------------------------------

    def start(self, now: int) -> None:
        self.vcpu.set_blocked()

    def on_wake(self, now: int) -> None:
        if self.vcpu.remaining_burst > 0:
            return  # already has queued work
        if self._phase is _Phase.IDLE and self._backlog:
            self._start_next_request()
        elif self._phase is _Phase.WAIT_RING:
            self._push_staged(now)

    def on_burst_complete(self, now: int) -> None:
        if self._phase is _Phase.BASE:
            self._prepare_chunk()
        elif self._phase is _Phase.PREP:
            self._staged = min(self.chunk_bytes, self._to_stream)
            self._push_staged(now)
        else:
            raise SimulationError(f"burst completed in phase {self._phase}")

    # -- server loop ----------------------------------------------------------

    def _start_next_request(self) -> None:
        self._active = self._backlog.popleft()
        self._to_stream = self._active.size_bytes
        self._staged = 0
        self._phase = _Phase.BASE
        self.vcpu.begin_burst(self.base_cpu_ns)

    def _prepare_chunk(self) -> None:
        chunk = min(self.chunk_bytes, self._to_stream)
        self._phase = _Phase.PREP
        self.vcpu.begin_burst(max(1, int(chunk * self.cpu_per_byte_ns)))

    def _push_staged(self, now: int) -> None:
        """Hand the prepared chunk to the NIC; block if the ring is full."""
        accepted, finish = (0, 0)
        if self._staged > 0:
            accepted, finish = self.nic.enqueue(self._staged, now)
            if accepted:
                self._staged -= accepted
                self._to_stream -= accepted
        if self._staged > 0:
            self._phase = _Phase.WAIT_RING
            wait = self.nic.time_until_space(self._staged, now)
            self.vcpu.set_blocked()
            self.machine.engine.after(wait, partial(self.machine.wake, self.vcpu))
            return
        if self._to_stream > 0:
            self._prepare_chunk()
            return
        # Response fully queued: record completion when the wire finishes,
        # then move on to the next request immediately (nginx is async).
        self._complete_at(self._active, finish)
        self._active = None
        if self._backlog:
            self._start_next_request()
        else:
            self._phase = _Phase.IDLE
            self.vcpu.set_blocked()

    def _complete_at(self, request: _Request, wire_done: int) -> None:
        def finish() -> None:
            request.finished_at = self.machine.engine.now + WIRE_ONE_WAY_NS
            self.completed.append(request)
            if self.on_complete is not None:
                self.on_complete(request)

        delay = max(0, wire_done - self.machine.engine.now)
        self.machine.engine.after(delay, finish)

    @property
    def queue_depth(self) -> int:
        return len(self._backlog) + (1 if self._active is not None else 0)


class Wrk2Client:
    """Constant-throughput open-loop load generator (wrk2 semantics).

    Requests are scheduled at exact ``1/rate`` intervals over a fixed
    pool of connections (wrk2's ``-c``); a request whose connection is
    still busy waits client-side.  Latency is measured from the
    *intended* send time either way, so queueing during overload is
    fully visible (no coordinated omission).

    Args:
        machine: Simulated machine (clock source).
        server: Target workload.
        rate_per_s: Offered request rate.
        size_bytes: Response size to request.
        duration_ns: How long to generate load.
        connections: Maximum in-flight requests (wrk2 connection pool).
    """

    def __init__(
        self,
        machine: Machine,
        server: WebServerWorkload,
        rate_per_s: float,
        size_bytes: int,
        duration_ns: int,
        connections: int = 8,
    ) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError("request rate must be positive")
        if connections < 1:
            raise ConfigurationError("need at least one connection")
        self.machine = machine
        self.server = server
        self.rate_per_s = rate_per_s
        self.interval_ns = max(1, int(1e9 / rate_per_s))
        self.size_bytes = size_bytes
        self.duration_ns = duration_ns
        self.connections = connections
        self.issued = 0
        self._in_flight = 0
        self._waiting: Deque[_Request] = deque()
        server.on_complete = self._request_done

    def start(self, start_at: int = 0) -> None:
        self._schedule_next(start_at)

    def _schedule_next(self, when: int) -> None:
        if when >= self.duration_ns:
            return
        # partial of a bound method (no closure) keeps the event heap
        # picklable for campaign shard hand-off.
        self.machine.engine.at(
            max(when, self.machine.engine.now), partial(self._fire, when)
        )

    def _fire(self, when: int) -> None:
        request = _Request(intended_at=when, size_bytes=self.size_bytes)
        self.issued += 1
        if self._in_flight < self.connections:
            self._send(request)
        else:
            self._waiting.append(request)
        self._schedule_next(when + self.interval_ns)

    def _send(self, request: _Request) -> None:
        self._in_flight += 1
        self.machine.engine.after(
            WIRE_ONE_WAY_NS, partial(self.server.deliver, request)
        )

    def _request_done(self, _request: _Request) -> None:
        self._in_flight -= 1
        if self._waiting and self._in_flight < self.connections:
            self._send(self._waiting.popleft())

    # -- results -----------------------------------------------------------

    def latencies_ns(self) -> List[int]:
        return [
            r.finished_at - r.intended_at
            for r in self.server.completed
            if r.finished_at is not None
        ]

    def achieved_throughput(self, window_ns: int) -> float:
        """Completed requests per second over ``window_ns``."""
        return len(self.server.completed) / (window_ns / 1e9)

    def summary(self) -> LatencySummary:
        return summarize_ns(self.latencies_ns())
