"""stress-style background workloads (Sec. 7.2: "an I/O-intensive
workload based on the well-known stress benchmark").

Two variants are used throughout the evaluation:

* :class:`CpuHog` — the cache-thrashing, fully CPU-bound worker
  (``stress -m``-like).  It never voluntarily invokes the VM scheduler,
  which is why all schedulers look similar in Fig. 8's capped scenario.
* :class:`IoLoop` — the I/O-intensive worker (``stress -i``-like): short
  compute bursts separated by blocking I/O, generating a high rate of
  block/wakeup events that stress the scheduler's hot paths.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.vm import Workload


class CpuHog(Workload):
    """Fully CPU-bound worker: computes forever, never blocks.

    ``chunk_ns`` only controls internal burst granularity (the vCPU
    re-queues compute immediately), so it has no scheduling-visible
    effect beyond limiting how far the simulator plans ahead.
    """

    def __init__(self, chunk_ns: int = 5_000_000) -> None:
        super().__init__()
        if chunk_ns <= 0:
            raise ConfigurationError("chunk must be positive")
        self.chunk_ns = chunk_ns

    def start(self, now: int) -> None:
        self.vcpu.begin_burst(self.chunk_ns)

    def on_burst_complete(self, now: int) -> None:
        self.vcpu.begin_burst(self.chunk_ns)


class IoLoop(Workload):
    """I/O-intensive worker: compute briefly, block on I/O, repeat.

    Args:
        compute_ns: Mean compute burst between I/O operations.
        io_ns: Mean blocking time (device service + queueing).
        jitter: Relative uniform jitter applied to both phases
            (0.2 -> durations drawn from [0.8x, 1.2x]).

    The defaults (400 us compute / 500 us I/O) give each worker roughly
    1 kHz of scheduler invocations at ~44% duty cycle — heavy enough
    that four such VMs oversubscribe a core, the "frequently triggers
    the VM scheduler" regime the paper targets with stress -i.
    """

    def __init__(
        self,
        compute_ns: int = 400_000,
        io_ns: int = 500_000,
        jitter: float = 0.3,
    ) -> None:
        super().__init__()
        if compute_ns <= 0 or io_ns <= 0:
            raise ConfigurationError("phase durations must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")
        self.compute_ns = compute_ns
        self.io_ns = io_ns
        self.jitter = jitter
        self.io_completions = 0
        self._uniform = None  # bound rng.uniform, cached at start()

    def _jittered(self, mean: int) -> int:
        if self.jitter == 0.0:
            return mean
        spread = self.jitter * mean
        draw = self._uniform(mean - spread, mean + spread)
        return 1 if draw < 1 else int(draw)

    def start(self, now: int) -> None:
        # The engine's RNG is fixed for the machine's lifetime; caching
        # the bound method keeps the (very hot) jitter draw to one call.
        self._uniform = self.machine.engine.rng.uniform
        self.vcpu.begin_burst(self._jittered(self.compute_ns))

    def on_burst_complete(self, now: int) -> None:
        # Compute phase done: issue the I/O and block until it completes.
        self.vcpu.set_blocked()
        delay = self._jittered(self.io_ns)
        self.machine.engine.after(delay, self._io_complete)

    def _io_complete(self) -> None:
        self.io_completions += 1
        self.machine.wake(self.vcpu)

    def on_wake(self, now: int) -> None:
        if self.vcpu.remaining_burst == 0:
            self.vcpu.begin_burst(self._jittered(self.compute_ns))
