"""stress-style background workloads (Sec. 7.2: "an I/O-intensive
workload based on the well-known stress benchmark").

Two variants are used throughout the evaluation:

* :class:`CpuHog` — the cache-thrashing, fully CPU-bound worker
  (``stress -m``-like).  It never voluntarily invokes the VM scheduler,
  which is why all schedulers look similar in Fig. 8's capped scenario.
* :class:`IoLoop` — the I/O-intensive worker (``stress -i``-like): short
  compute bursts separated by blocking I/O, generating a high rate of
  block/wakeup events that stress the scheduler's hot paths.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.vm import VCpuState, Workload


class CpuHog(Workload):
    """Fully CPU-bound worker: computes forever, never blocks.

    ``chunk_ns`` only controls internal burst granularity (the vCPU
    re-queues compute immediately), so it has no scheduling-visible
    effect beyond limiting how far the simulator plans ahead.
    """

    def __init__(self, chunk_ns: int = 5_000_000) -> None:
        super().__init__()
        if chunk_ns <= 0:
            raise ConfigurationError("chunk must be positive")
        self.chunk_ns = chunk_ns

    def start(self, now: int) -> None:
        self.vcpu.begin_burst(self.chunk_ns)

    def on_burst_complete(self, now: int) -> None:
        self.vcpu.begin_burst(self.chunk_ns)


class IoLoop(Workload):
    """I/O-intensive worker: compute briefly, block on I/O, repeat.

    Args:
        compute_ns: Mean compute burst between I/O operations.
        io_ns: Mean blocking time (device service + queueing).
        jitter: Relative uniform jitter applied to both phases
            (0.2 -> durations drawn from [0.8x, 1.2x]).

    The defaults (400 us compute / 500 us I/O) give each worker roughly
    1 kHz of scheduler invocations at ~44% duty cycle — heavy enough
    that four such VMs oversubscribe a core, the "frequently triggers
    the VM scheduler" regime the paper targets with stress -i.
    """

    def __init__(
        self,
        compute_ns: int = 400_000,
        io_ns: int = 500_000,
        jitter: float = 0.3,
    ) -> None:
        super().__init__()
        if compute_ns <= 0 or io_ns <= 0:
            raise ConfigurationError("phase durations must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")
        self.compute_ns = compute_ns
        self.io_ns = io_ns
        self.jitter = jitter
        self.io_completions = 0
        self._uniform = None  # bound rng.uniform, cached at start()
        self._random = None  # bound rng.random, cached at start()
        self._after = None  # bound engine.after, cached at start()
        # Jitter window per phase, precomputed so the (very hot) draw in
        # ``on_wake``/``on_burst_complete`` is one ``random()`` call plus
        # arithmetic.  ``_c_span``/``_io_span`` reproduce ``uniform``'s
        # ``b - a`` float subtraction exactly, keeping draws bit-identical
        # to the previous ``rng.uniform(a, b)`` formulation.
        c_spread = jitter * compute_ns
        io_spread = jitter * io_ns
        self._c_lo = compute_ns - c_spread
        self._c_span = (compute_ns + c_spread) - (compute_ns - c_spread)
        self._io_lo = io_ns - io_spread
        self._io_span = (io_ns + io_spread) - (io_ns - io_spread)

    def _jittered(self, mean: int) -> int:
        if self.jitter == 0.0:
            return mean
        spread = self.jitter * mean
        draw = self._uniform(mean - spread, mean + spread)
        return 1 if draw < 1 else int(draw)

    def start(self, now: int) -> None:
        # The engine's RNG is fixed for the machine's lifetime; caching
        # the bound methods keeps the hot hooks free of attribute chains.
        engine = self.machine.engine
        self._uniform = engine.rng.uniform
        self._random = engine.rng.random
        self._after = engine.after
        self.vcpu.begin_burst(self._jittered(self.compute_ns))

    def on_burst_complete(self, now: int) -> None:
        # Compute phase done: issue the I/O and block until it completes.
        # ``set_blocked`` is inlined (this fires once per I/O cycle per
        # background VM, the simulator's highest-rate workload hook).
        vcpu = self.vcpu
        vcpu.remaining_burst = 0
        vcpu.state = VCpuState.BLOCKED
        if self.jitter == 0.0:
            delay = self.io_ns
        else:
            draw = self._io_lo + self._io_span * self._random()
            delay = 1 if draw < 1 else int(draw)
        self._after(delay, self._io_complete)

    def _io_complete(self) -> None:
        self.io_completions += 1
        self.machine.wake(self.vcpu)

    def on_wake(self, now: int) -> None:
        vcpu = self.vcpu
        if vcpu.remaining_burst == 0:
            # Inlined ``begin_burst``: the draw is always >= 1 and the
            # vCPU is blocked here (wake hooks only fire pre-dispatch),
            # so the validation and state checks reduce to assignments.
            if self.jitter == 0.0:
                vcpu.remaining_burst = self.compute_ns
            else:
                draw = self._c_lo + self._c_span * self._random()
                vcpu.remaining_burst = 1 if draw < 1 else int(draw)
            if vcpu.state is VCpuState.BLOCKED:
                vcpu.state = VCpuState.RUNNABLE
