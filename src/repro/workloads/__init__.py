"""Workload models reproducing the paper's evaluation drivers.

stress-style CPU/I/O hogs, the redis-cli intrinsic-latency probe, the
ping responder/client pair, and the nginx/wrk2 web-serving stack with
its SR-IOV virtual NIC model.
"""

from repro.workloads.intrinsic import IntrinsicLatencyProbe
from repro.workloads.netdev import (
    DEFAULT_LINE_RATE_BPS,
    DEFAULT_RING_BYTES,
    VirtualNic,
)
from repro.workloads.pingprobe import (
    ECHO_PROCESSING_NS,
    WIRE_RTT_NS,
    PingClient,
    PingResponder,
    run_ping_load,
)
from repro.workloads.stress import CpuHog, IoLoop
from repro.workloads.webserver import (
    BASE_CPU_NS,
    CPU_PER_BYTE_NS,
    KIB,
    MIB,
    WebServerWorkload,
    Wrk2Client,
)

__all__ = [
    "BASE_CPU_NS",
    "CPU_PER_BYTE_NS",
    "CpuHog",
    "DEFAULT_LINE_RATE_BPS",
    "DEFAULT_RING_BYTES",
    "ECHO_PROCESSING_NS",
    "IntrinsicLatencyProbe",
    "IoLoop",
    "KIB",
    "MIB",
    "PingClient",
    "PingResponder",
    "VirtualNic",
    "WIRE_RTT_NS",
    "WebServerWorkload",
    "Wrk2Client",
    "run_ping_load",
]
