"""Ping latency measurement (Sec. 7.3).

ICMP echo requests are answered inside the guest kernel, so with the
guest scheduler out of the picture the round-trip time is dominated by
how quickly the VM scheduler dispatches the (blocked, now woken) vCPU.
The model: a client injects echo requests at random intervals; each
request wakes the vantage vCPU; the reply is sent after a tiny
in-kernel processing burst once the vCPU actually runs.  Measured
latency = wire RTT + scheduling delay + processing.

The paper's setup — eight client threads, 5,000 pings each, spacing
uniform in [0, 200 ms] — is the default of :func:`run_ping_load`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List

from repro.errors import ConfigurationError
from repro.sim.machine import Machine
from repro.sim.vm import Workload

#: One-way wire + NIC latency on the paper's quiet 10 GbE network.
WIRE_RTT_NS = 60_000
#: In-guest-kernel cost of answering one echo request.
ECHO_PROCESSING_NS = 8_000


class PingResponder(Workload):
    """The vantage VM's kernel: answers echo requests when scheduled.

    The vCPU sleeps unless requests are pending; each pending request
    costs :data:`ECHO_PROCESSING_NS` of guest CPU, and its reply is
    timestamped when that burst completes.
    """

    def __init__(self) -> None:
        super().__init__()
        self._pending: List[int] = []  # arrival timestamps (FIFO)
        self.latencies_ns: List[int] = []

    def start(self, now: int) -> None:
        self.vcpu.set_blocked()

    def inject(self, sent_at: int) -> None:
        """Deliver an echo request (called by the client via the wire)."""
        self._pending.append(sent_at)
        self.machine.wake(self.vcpu)

    def on_wake(self, now: int) -> None:
        if self._pending and self.vcpu.remaining_burst == 0:
            self.vcpu.begin_burst(ECHO_PROCESSING_NS)

    def on_burst_complete(self, now: int) -> None:
        sent_at = self._pending.pop(0)
        # Reply hits the client half an RTT later; total latency includes
        # both wire directions plus everything the scheduler added.
        self.latencies_ns.append(now + WIRE_RTT_NS // 2 - sent_at)
        if self._pending:
            self.vcpu.begin_burst(ECHO_PROCESSING_NS)
        else:
            self.vcpu.set_blocked()

    @property
    def max_latency_ns(self) -> int:
        return max(self.latencies_ns, default=0)

    @property
    def mean_latency_ns(self) -> float:
        if not self.latencies_ns:
            return 0.0
        return sum(self.latencies_ns) / len(self.latencies_ns)


@dataclass
class PingClient:
    """Client-side load generator: randomly spaced echo requests.

    Args:
        machine: The simulated machine (provides clock and RNG).
        responder: The vantage VM's responder.
        count: Requests this client thread sends.
        max_spacing_ns: Spacing drawn uniformly from [0, max_spacing_ns]
            (the paper uses 0-200 ms).
    """

    machine: Machine
    responder: PingResponder
    count: int = 5_000
    max_spacing_ns: int = 200_000_000

    def start(self) -> None:
        if self.count < 1:
            raise ConfigurationError("ping count must be >= 1")
        self._send(remaining=self.count)

    def _send(self, remaining: int) -> None:
        delay = int(self.machine.engine.rng.uniform(0, self.max_spacing_ns))
        # Bound methods + partial (no closures) keep the event heap
        # picklable for campaign shard hand-off.
        self.machine.engine.after(delay, partial(self._fire, remaining))

    def _fire(self, remaining: int) -> None:
        sent_at = self.machine.engine.now
        # The request reaches the guest half an RTT after sending.
        self.machine.engine.after(
            WIRE_RTT_NS // 2, partial(self.responder.inject, sent_at)
        )
        if remaining > 1:
            self._send(remaining - 1)


def run_ping_load(
    machine: Machine,
    responder: PingResponder,
    threads: int = 8,
    pings_per_thread: int = 5_000,
    max_spacing_ns: int = 200_000_000,
) -> List[PingClient]:
    """Start the paper's ping load: N threads of randomly spaced echoes."""
    clients = [
        PingClient(machine, responder, pings_per_thread, max_spacing_ns)
        for _ in range(threads)
    ]
    for client in clients:
        client.start()
    return clients
