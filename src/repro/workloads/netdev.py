"""Virtual NIC model (SR-IOV virtual function with a ring buffer).

Each VM in the paper's web-server experiment owns an SR-IOV virtual
function, bypassing dom0's I/O stack.  What remains scheduling-relevant
is the transmit ring: the guest enqueues frames while it is running; the
device drains the ring at line rate regardless of whether the guest is
scheduled.  A descheduled guest can therefore keep the wire busy only
for as long as the ring holds data — the mechanism behind Tableau's
lower I/O-device utilization for capped VMs serving large files
(Sec. 7.5, Fig. 7 g-i).

The model is analytic rather than per-frame: because the drain rate is
constant, the ring's state is fully described by the time at which it
becomes empty, making enqueue/occupancy/space queries O(1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError

#: Defaults chosen to match the evaluation setup: a virtual function's
#: effective share of the 10 GbE link, and a typical TX ring footprint.
DEFAULT_LINE_RATE_BPS = 2_500_000_000  # 2.5 Gbit/s effective per VF
DEFAULT_RING_BYTES = 262_144  # 256 KiB


class VirtualNic:
    """Constant-rate transmit path with a bounded ring buffer.

    Args:
        line_rate_bps: Drain rate in bits per second.
        ring_bytes: Transmit ring capacity in bytes.
    """

    def __init__(
        self,
        line_rate_bps: float = DEFAULT_LINE_RATE_BPS,
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        if line_rate_bps <= 0 or ring_bytes <= 0:
            raise ConfigurationError("line rate and ring size must be positive")
        self.bytes_per_ns = line_rate_bps / 8 / 1e9
        self.ring_bytes = ring_bytes
        self._empty_at: float = 0.0  # time the ring fully drains
        self.bytes_sent: int = 0
        self.busy_ns: float = 0.0  # total time the wire was active

    # ------------------------------------------------------------------

    def occupancy(self, now: int) -> int:
        """Bytes currently queued in the ring."""
        backlog_ns = max(0.0, self._empty_at - now)
        return min(self.ring_bytes, int(backlog_ns * self.bytes_per_ns))

    def free_space(self, now: int) -> int:
        return self.ring_bytes - self.occupancy(now)

    def enqueue(self, nbytes: int, now: int) -> Tuple[int, int]:
        """Queue up to ``nbytes``; returns ``(accepted, finish_time_ns)``.

        ``finish_time_ns`` is when the last accepted byte leaves the
        wire (0 if nothing was accepted).  Partial acceptance models a
        full ring.
        """
        if nbytes <= 0:
            raise ConfigurationError("enqueue size must be positive")
        accepted = min(nbytes, self.free_space(now))
        if accepted == 0:
            return 0, 0
        duration = accepted / self.bytes_per_ns
        start = max(float(now), self._empty_at)
        if start > self._empty_at:
            pass  # wire was idle between old backlog and this frame
        self._empty_at = max(float(now), self._empty_at) + duration
        self.bytes_sent += accepted
        self.busy_ns += duration
        return accepted, int(self._empty_at)

    def time_until_space(self, nbytes: int, now: int) -> int:
        """Nanoseconds until ``nbytes`` of ring space become available."""
        if nbytes > self.ring_bytes:
            raise ConfigurationError(
                f"{nbytes} bytes can never fit a {self.ring_bytes}-byte ring"
            )
        deficit = nbytes - self.free_space(now)
        if deficit <= 0:
            return 0
        return int(deficit / self.bytes_per_ns) + 1

    def utilization(self, window_ns: int) -> float:
        """Fraction of ``window_ns`` the wire spent transmitting."""
        if window_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / window_ns)
