"""Per-phase wall-clock timing hooks for experiment pipelines.

Every campaign shard (and any experiment that opts in) passes through
the same four phases — ``plan`` (table generation or cache lookup),
``build`` (machine/scenario assembly, slice tables), ``simulate`` (the
discrete-event run), ``aggregate`` (metric summarization).  A
:class:`PhaseTimings` instance accumulates wall seconds per phase so
reports can show where a run's time went and how much a warm plan
cache saved.

Wall-clock readings live here, outside the determinism-scoped
packages: phase timings are observability only and never feed
scheduling state, so simulated behavior stays bit-identical whether or
not timing is enabled.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

#: Canonical phase names, in pipeline order.
PHASES = ("plan", "build", "simulate", "aggregate")


class PhaseTimings:
    """Accumulates wall seconds and entry counts per named phase."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase: ``with timings.phase("plan"): ...``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration under ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def merge(self, other: "PhaseTimings") -> None:
        for name in sorted(other.seconds):
            self.seconds[name] = self.seconds.get(name, 0.0) + other.seconds[name]
            self.counts[name] = self.counts.get(name, 0) + other.counts.get(name, 0)

    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> Dict[str, float]:
        """Phase -> seconds, rounded, in canonical-then-extra order."""
        ordered = [p for p in PHASES if p in self.seconds]
        ordered += sorted(set(self.seconds) - set(PHASES))
        return {name: round(self.seconds[name], 6) for name in ordered}
