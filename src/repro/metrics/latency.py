"""Latency statistics: summaries, percentiles, coordinated omission.

The paper reports mean, 99th-percentile, and maximum observed latency
per configuration (Figs. 6-8), measured with wrk2, whose defining
feature is correcting for *coordinated omission* [66]: latencies are
measured against the intended (constant-rate) send schedule rather than
the actual send times, so a stalled server cannot hide queueing delay by
slowing the load generator down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

MS = 1_000_000


@dataclass(frozen=True)
class LatencySummary:
    """The latency triple the paper plots, plus sample count."""

    count: int
    mean_ns: float
    p50_ns: float
    p99_ns: float
    max_ns: float

    @property
    def mean_ms(self) -> float:
        return self.mean_ns / MS

    @property
    def p99_ms(self) -> float:
        return self.p99_ns / MS

    @property
    def max_ms(self) -> float:
        return self.max_ns / MS

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"n={self.count} mean={self.mean_ms:.2f}ms "
            f"p99={self.p99_ms:.2f}ms max={self.max_ms:.2f}ms"
        )


EMPTY_SUMMARY = LatencySummary(count=0, mean_ns=0.0, p50_ns=0.0, p99_ns=0.0, max_ns=0.0)


def summarize_ns(samples: Sequence[float]) -> LatencySummary:
    """Summarize a latency sample set (empty input yields zeros)."""
    if len(samples) == 0:
        return EMPTY_SUMMARY
    data = np.asarray(samples, dtype=np.float64)
    return LatencySummary(
        count=int(data.size),
        mean_ns=float(data.mean()),
        p50_ns=float(np.percentile(data, 50)),
        p99_ns=float(np.percentile(data, 99)),
        max_ns=float(data.max()),
    )


def percentile_ns(samples: Sequence[float], percentile: float) -> float:
    if len(samples) == 0:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=np.float64), percentile))


def corrected_latencies(
    intended_times: Sequence[int],
    completion_times: Sequence[int],
) -> List[int]:
    """Coordinated-omission-corrected latencies.

    Pairs each completion with its intended send time (both sequences in
    issue order) — the wrk2 measurement model.  Responses that never
    completed are excluded; callers wanting to penalize them should cap
    the run and treat missing completions separately.
    """
    return [
        completion - intended
        for intended, completion in zip(intended_times, completion_times)
    ]


def service_gaps_ns(intervals: Sequence[tuple], wrap_ns: int = 0) -> List[int]:
    """Gaps between consecutive (start, end) service intervals.

    Used to derive scheduling-delay distributions from traced vCPU
    service timelines; with ``wrap_ns`` set, the wrap-around gap of a
    cyclic schedule is included.
    """
    ordered = sorted(intervals)
    gaps = [
        max(0, nxt[0] - cur[1]) for cur, nxt in zip(ordered, ordered[1:])
    ]
    if wrap_ns and ordered:
        gaps.append(max(0, ordered[0][0] + wrap_ns - ordered[-1][1]))
    return gaps
