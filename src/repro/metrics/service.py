"""Service-level metrics: the deterministic scheduler-service report.

Unlike :mod:`repro.metrics.latency` (float summaries of measured
probes), everything here must be **byte-stable**: the service report is
serialized with sorted keys and compared across runs and worker counts
in CI.  Percentiles are therefore integer nearest-rank (no
interpolation, no numpy float paths) over integer-nanosecond samples,
and every derived ratio is rounded once, here, at the edge.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.service.control import SchedulerService

#: Latency quantiles the report carries (per mille labels).
_QUANTILES = (("p50", 500), ("p99", 990), ("p999", 999))


def percentile_rank_ns(samples: Sequence[int], per_mille: int) -> int:
    """Nearest-rank percentile of integer samples (0 when empty).

    ``per_mille`` is the quantile in thousandths (p99.9 == 999) so the
    rank computation stays in integers end to end: the rank of q‰ over
    n samples is ``ceil(n * q / 1000)``, computed as an integer ceiling
    division.
    """
    if not samples:
        return 0
    ordered = sorted(samples)
    rank = -(-len(ordered) * per_mille // 1000)  # ceil div
    return ordered[max(0, min(rank, len(ordered)) - 1)]


def _latency_block(samples: Sequence[int]) -> Dict[str, int]:
    block = {
        label: percentile_rank_ns(samples, per_mille)
        for label, per_mille in _QUANTILES
    }
    block["max"] = max(samples) if samples else 0
    block["count"] = len(samples)
    return block


def service_report(service: "SchedulerService") -> Dict[str, object]:
    """The deterministic report of one finished service run.

    Everything in here derives from simulated state only — counters,
    integer-ns latency samples, and config echoes.  Wall-clock
    observability (real planning time, cache temperature) deliberately
    has no key: the report must be byte-identical across hosts, worker
    counts, and cache states for the same (topology, seeds, config).
    """
    total_requests = sum(service.requests_by_kind.values())
    rejected_total = sum(service.rejected.values())
    pushes = service.table_pushes
    mutations = service.mutations_committed
    return {
        "scheduler": service.scheduler,
        "sim_seconds": service.engine.now // 1_000_000_000,
        "requests": {
            "total": total_requests,
            "by_kind": dict(sorted(service.requests_by_kind.items())),
        },
        "rejected": {
            "total": rejected_total,
            "by_reason": dict(sorted(service.rejected.items())),
            "rate": round(rejected_total / total_requests, 6)
            if total_requests
            else 0.0,
        },
        "queries": {
            "fresh": service.queries_fresh,
            "stale": service.queries_stale,
        },
        "batching": {
            "batches_committed": service.batches_committed,
            "batches_failed": service.batches_failed,
            "mutations_committed": mutations,
            "table_pushes": pushes,
            "ratio": round(mutations / pushes, 4) if pushes else 0.0,
            "window_widenings": service.window_widenings,
        },
        "daemon": {
            "total_replans": service.daemon.total_replans,
            "committed_replans": service.daemon.committed_replans,
            "failed_replans": service.daemon.failed_replans,
            "total_push_backoff_ns": service.daemon.total_push_backoff_ns,
            "history_len": len(service.daemon.history),
            "failed_activations": (
                service.daemon.hypercall.failed_activations
                if service.daemon.hypercall is not None
                else 0
            ),
        },
        "replan_latency_ns": _latency_block(service.replan_latencies_ns),
        "sojourn_ns": _latency_block(service.sojourns_ns),
        "slo": {
            "sojourn_slo_ns": service.config.sojourn_slo_ns,
            "violations": service.slo_violations,
        },
        "population": {
            "final": service.population,
            "peak": service.peak_population,
            "peak_queue": service.peak_queue,
        },
    }


def service_report_json(report: Dict[str, object]) -> str:
    """Canonical byte encoding (sorted keys, trailing newline) — the
    string CI compares across runs and worker counts."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def format_service_report(report: Dict[str, object]) -> str:
    """Human-readable summary for the CLI."""
    requests = report["requests"]
    rejected = report["rejected"]
    batching = report["batching"]
    replan = report["replan_latency_ns"]
    sojourn = report["sojourn_ns"]
    slo = report["slo"]
    population = report["population"]
    queries = report["queries"]
    lines: List[str] = [
        f"service[{report['scheduler']}]: {report['sim_seconds']}s simulated, "
        f"{requests['total']} requests "
        f"({rejected['total']} rejected, {100.0 * rejected['rate']:.2f}%)",
        f"  batching: {batching['mutations_committed']} mutations in "
        f"{batching['table_pushes']} pushes "
        f"(ratio {batching['ratio']:.2f}, "
        f"{batching['window_widenings']} widenings)",
        f"  replan latency: p50={replan['p50'] / 1e6:.1f}ms "
        f"p99={replan['p99'] / 1e6:.1f}ms "
        f"p999={replan['p999'] / 1e6:.1f}ms "
        f"max={replan['max'] / 1e6:.1f}ms",
        f"  sojourn: p50={sojourn['p50'] / 1e6:.1f}ms "
        f"p99={sojourn['p99'] / 1e6:.1f}ms "
        f"p999={sojourn['p999'] / 1e6:.1f}ms "
        f"({slo['violations']} SLO violations)",
        f"  queries: {queries['fresh']} fresh, {queries['stale']} stale",
        f"  population: {population['final']} final, "
        f"{population['peak']} peak ({population['peak_queue']} peak queue)",
    ]
    by_reason = rejected["by_reason"]
    assert isinstance(by_reason, dict)
    noted = {k: v for k, v in sorted(by_reason.items()) if v}
    if noted:
        parts = " ".join(f"{k}={v}" for k, v in noted.items())
        lines.append(f"  rejections: {parts}")
    return "\n".join(lines)
