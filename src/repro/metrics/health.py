"""Formatting for health-supervision and chaos-run reports.

Turns the plain-data report of
:meth:`repro.health.HealthSupervisor.report` (as carried by
:class:`repro.health.ChaosResult`) into the human-readable summary the
``chaos`` CLI subcommand prints, and into the JSON document the CI chaos
matrix uploads as an artifact.
"""

from __future__ import annotations

import json
from typing import List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.health.chaos import ChaosResult

MS = 1_000_000


def format_chaos_report(result: "ChaosResult") -> str:
    """Multi-line human-readable summary of one chaos run."""
    lines: List[str] = []
    add = lines.append
    add(
        f"chaos run: seed={result.seed} simulated={result.seconds:g}s "
        f"replans={result.replans} (committed {result.committed_replans})"
    )

    if result.injected_by_site:
        add("injected faults:")
        for site, count in sorted(result.injected_by_site.items()):
            add(f"  {site:<24s} {count}")
    else:
        add("injected faults: none (fault-free baseline)")

    report = result.health_report
    if not report:
        add("health supervision: disabled")
    else:
        faults = report["faults_observed"]
        add(
            "machine-level faults: "
            f"lost IPIs {faults['lost_ipis']}, "
            f"delayed IPIs {faults['delayed_ipis']}, "
            f"jittered timers {faults['jittered_timers']}, "
            f"stuck overruns {faults['stuck_overruns']}"
        )
        dispatch = report["dispatch"]
        add(
            "dispatch: "
            f"switches {dispatch['table_switches']} "
            f"(failed {dispatch['failed_switches']}), "
            f"degraded picks {dispatch['degraded_picks']}"
        )
        if dispatch["degraded_cores"]:
            for cpu, reason in sorted(dispatch["degraded_cores"].items()):
                add(f"  core {cpu} STILL DEGRADED: {reason}")
        else:
            add("  all cores in table-driven dispatch")
        watchdog = report["watchdog"]
        add(
            f"watchdog: {watchdog['checks']} checks, "
            f"{watchdog['kicks']} stall kicks"
        )
        for cpu, kicks in sorted(watchdog.get("kicks_by_cpu", {}).items()):
            add(f"  core {cpu}: {kicks} kicks")
        guarantees = report["guarantees"]
        violations = guarantees["violations"]
        if violations:
            breakdown = ", ".join(
                f"{kind} {count}" for kind, count in sorted(violations.items())
            )
            add(
                f"(U, L) monitor: {guarantees['samples']} samples, "
                f"violations: {breakdown}"
            )
        else:
            add(
                f"(U, L) monitor: {guarantees['samples']} samples, "
                "no violations"
            )
        quarantines = report["quarantines"]
        if quarantines:
            add(f"quarantined vCPUs ({len(quarantines)}):")
            for name, info in sorted(quarantines.items()):
                status = (
                    "active"
                    if info["released_at_ns"] is None
                    else f"released at {info['released_at_ns'] / MS:.1f}ms"
                )
                add(
                    f"  {name}: {info['reason']} "
                    f"(at {info['at_ns'] / MS:.1f}ms, {status})"
                )
        else:
            add("quarantined vCPUs: none")
        recoveries = report["recoveries"]
        if recoveries:
            add(f"recovery replans ({len(recoveries)}):")
            for attempt in recoveries:
                outcome = (
                    "committed" if attempt["committed"] else attempt["error"]
                )
                add(
                    f"  at {attempt['at_ns'] / MS:.1f}ms for cores "
                    f"{attempt['degraded_cores']}: {outcome}"
                )

    if result.audit_violations:
        add(f"invariant audit: {result.audits} audits, VIOLATIONS:")
        for violation in result.audit_violations:
            add(f"  {violation}")
    else:
        add(f"invariant audit: {result.audits} audits, clean")
    return "\n".join(lines)


def chaos_report_json(result: "ChaosResult") -> str:
    """The machine-readable artifact the CI chaos matrix uploads."""
    return json.dumps(
        {
            "seed": result.seed,
            "seconds": result.seconds,
            "engine": result.engine,
            "replans": result.replans,
            "committed_replans": result.committed_replans,
            "injected_by_site": result.injected_by_site,
            "health": result.health_report,
            "audit": {
                "audits": result.audits,
                "clean": result.audit_clean,
                "violations": result.audit_violations,
            },
            "regen_failures": result.regen_failures,
        },
        indent=2,
        sort_keys=True,
    )
