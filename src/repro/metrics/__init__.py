"""Measurement utilities: latency summaries and SLA-aware throughput."""

from repro.metrics.latency import (
    EMPTY_SUMMARY,
    LatencySummary,
    corrected_latencies,
    percentile_ns,
    service_gaps_ns,
    summarize_ns,
)
from repro.metrics.throughput import (
    OperatingPoint,
    ThroughputCurve,
    compare_peaks,
)

__all__ = [
    "EMPTY_SUMMARY",
    "LatencySummary",
    "OperatingPoint",
    "ThroughputCurve",
    "compare_peaks",
    "corrected_latencies",
    "percentile_ns",
    "service_gaps_ns",
    "summarize_ns",
]
