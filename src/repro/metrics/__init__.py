"""Measurement utilities: latency summaries, SLA-aware throughput, and
health/chaos report formatting."""

from repro.metrics.health import chaos_report_json, format_chaos_report
from repro.metrics.latency import (
    EMPTY_SUMMARY,
    LatencySummary,
    corrected_latencies,
    percentile_ns,
    service_gaps_ns,
    summarize_ns,
)
from repro.metrics.phases import PHASES, PhaseTimings
from repro.metrics.service import (
    format_service_report,
    percentile_rank_ns,
    service_report,
    service_report_json,
)
from repro.metrics.throughput import (
    OperatingPoint,
    ThroughputCurve,
    compare_peaks,
)

__all__ = [
    "EMPTY_SUMMARY",
    "LatencySummary",
    "OperatingPoint",
    "PHASES",
    "PhaseTimings",
    "ThroughputCurve",
    "chaos_report_json",
    "compare_peaks",
    "corrected_latencies",
    "format_chaos_report",
    "format_service_report",
    "percentile_ns",
    "percentile_rank_ns",
    "service_gaps_ns",
    "service_report",
    "service_report_json",
    "summarize_ns",
]
