"""SLA-aware throughput metrics (the paper's headline comparison).

"Given a latency-based service-level agreement (SLA), Tableau supports a
higher SLA-aware throughput" (Sec. 7.4): for a family of
(offered rate -> achieved throughput, latency summary) measurements, the
SLA-aware peak throughput is the highest *achieved* throughput among
operating points whose latency percentile still meets the SLA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.metrics.latency import LatencySummary

MS = 1_000_000


@dataclass(frozen=True)
class OperatingPoint:
    """One point on a throughput-latency curve."""

    offered_rate: float  # requests/s the client generated
    achieved_rate: float  # requests/s actually completed
    latency: LatencySummary

    def meets_sla(self, sla_ns: float, metric: str = "p99") -> bool:
        value = {
            "mean": self.latency.mean_ns,
            "p99": self.latency.p99_ns,
            "max": self.latency.max_ns,
        }[metric]
        return value <= sla_ns


@dataclass
class ThroughputCurve:
    """A labelled sweep of operating points for one scheduler/config."""

    label: str
    points: List[OperatingPoint]

    def add(self, point: OperatingPoint) -> None:
        self.points.append(point)

    def sla_peak_throughput(
        self, sla_ns: float, metric: str = "p99"
    ) -> Optional[float]:
        """Highest achieved throughput with the SLA still met, or None."""
        eligible = [p.achieved_rate for p in self.points if p.meets_sla(sla_ns, metric)]
        return max(eligible) if eligible else None

    def saturation_rate(self, efficiency: float = 0.95) -> Optional[float]:
        """Offered rate at which achieved throughput falls below
        ``efficiency`` of offered (the knee of the curve)."""
        for point in sorted(self.points, key=lambda p: p.offered_rate):
            if point.achieved_rate < efficiency * point.offered_rate:
                return point.offered_rate
        return None

    def rows(self) -> List[tuple]:
        """(offered, achieved, mean_ms, p99_ms, max_ms) rows for display."""
        return [
            (
                p.offered_rate,
                p.achieved_rate,
                p.latency.mean_ms,
                p.latency.p99_ms,
                p.latency.max_ms,
            )
            for p in sorted(self.points, key=lambda p: p.offered_rate)
        ]


def compare_peaks(
    curves: Sequence[ThroughputCurve], sla_ns: float, metric: str = "p99"
) -> dict:
    """SLA-aware peak throughput per curve label (None if SLA never met)."""
    return {c.label: c.sla_peak_throughput(sla_ns, metric) for c in curves}
